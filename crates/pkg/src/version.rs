//! Debian-policy package versions.
//!
//! A version is `[epoch:]upstream[-revision]`. Ordering follows Debian
//! policy §5.6.12: numeric epoch first, then the upstream and revision
//! parts compared by alternating runs of non-digits and digits, where `~`
//! sorts before everything including the empty string (pre-releases).

use std::cmp::Ordering;

/// A parsed package version.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct Version {
    pub epoch: u32,
    pub upstream: String,
    pub revision: String,
}

impl Version {
    /// Parse from the canonical string form.
    pub fn parse(s: &str) -> Version {
        let (epoch, rest) = match s.find(':') {
            Some(i) if s[..i].chars().all(|c| c.is_ascii_digit()) && i > 0 => {
                (s[..i].parse().unwrap_or(0), &s[i + 1..])
            }
            _ => (0, s),
        };
        let (upstream, revision) = match rest.rfind('-') {
            Some(i) => (rest[..i].to_string(), rest[i + 1..].to_string()),
            None => (rest.to_string(), String::new()),
        };
        Version {
            epoch,
            upstream,
            revision,
        }
    }

    /// Convenience constructor for `x.y.z` style versions.
    pub fn new(upstream: &str) -> Version {
        Version::parse(upstream)
    }

    /// Bump the last numeric component of the upstream version — used by
    /// the 40-successive-builds workload to model rebuilt packages.
    pub fn bumped(&self, by: u32) -> Version {
        // Find trailing digit run in upstream.
        let bytes = self.upstream.as_bytes();
        let mut end = bytes.len();
        while end > 0 && !bytes[end - 1].is_ascii_digit() {
            end -= 1;
        }
        let mut start = end;
        while start > 0 && bytes[start - 1].is_ascii_digit() {
            start -= 1;
        }
        if start == end {
            // No numeric component: append one.
            return Version {
                epoch: self.epoch,
                upstream: format!("{}.{by}", self.upstream),
                revision: self.revision.clone(),
            };
        }
        let num: u64 = self.upstream[start..end].parse().unwrap_or(0);
        let mut up = String::with_capacity(self.upstream.len() + 2);
        up.push_str(&self.upstream[..start]);
        up.push_str(&(num + by as u64).to_string());
        up.push_str(&self.upstream[end..]);
        Version {
            epoch: self.epoch,
            upstream: up,
            revision: self.revision.clone(),
        }
    }
}

impl std::fmt::Display for Version {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.epoch > 0 {
            write!(f, "{}:", self.epoch)?;
        }
        f.write_str(&self.upstream)?;
        if !self.revision.is_empty() {
            write!(f, "-{}", self.revision)?;
        }
        Ok(())
    }
}

/// Debian character ordering: `~` < end-of-string < letters < non-letters
/// (by ASCII among themselves).
fn char_order(c: Option<u8>) -> i32 {
    match c {
        None => 0,
        Some(b'~') => -1,
        Some(c) if c.is_ascii_alphabetic() => c as i32,
        Some(c) => c as i32 + 256,
    }
}

/// Compare two version *parts* (upstream or revision) per Debian policy.
fn cmp_part(a: &str, b: &str) -> Ordering {
    let (a, b) = (a.as_bytes(), b.as_bytes());
    let (mut i, mut j) = (0usize, 0usize);
    loop {
        // Non-digit run.
        loop {
            let ca = a.get(i).copied().filter(|c| !c.is_ascii_digit());
            let cb = b.get(j).copied().filter(|c| !c.is_ascii_digit());
            if ca.is_none() && cb.is_none() {
                break;
            }
            let o = char_order(ca).cmp(&char_order(cb));
            if o != Ordering::Equal {
                return o;
            }
            if ca.is_some() {
                i += 1;
            }
            if cb.is_some() {
                j += 1;
            }
        }
        // Digit run: compare numerically (skip leading zeros via value).
        let di = i;
        while i < a.len() && a[i].is_ascii_digit() {
            i += 1;
        }
        let dj = j;
        while j < b.len() && b[j].is_ascii_digit() {
            j += 1;
        }
        let na = std::str::from_utf8(&a[di..i])
            .unwrap()
            .trim_start_matches('0');
        let nb = std::str::from_utf8(&b[dj..j])
            .unwrap()
            .trim_start_matches('0');
        let o = na.len().cmp(&nb.len()).then_with(|| na.cmp(nb));
        if o != Ordering::Equal {
            return o;
        }
        if i >= a.len() && j >= b.len() {
            return Ordering::Equal;
        }
    }
}

impl Ord for Version {
    fn cmp(&self, other: &Self) -> Ordering {
        self.epoch
            .cmp(&other.epoch)
            .then_with(|| cmp_part(&self.upstream, &other.upstream))
            .then_with(|| cmp_part(&self.revision, &other.revision))
    }
}

impl PartialOrd for Version {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(s: &str) -> Version {
        Version::parse(s)
    }

    #[test]
    fn parse_components() {
        let x = v("2:1.18.4-2ubuntu1");
        assert_eq!(x.epoch, 2);
        assert_eq!(x.upstream, "1.18.4");
        assert_eq!(x.revision, "2ubuntu1");
        assert_eq!(x.to_string(), "2:1.18.4-2ubuntu1");
    }

    #[test]
    fn parse_no_epoch_no_revision() {
        let x = v("5.10");
        assert_eq!(
            (x.epoch, x.upstream.as_str(), x.revision.as_str()),
            (0, "5.10", "")
        );
    }

    #[test]
    fn hyphen_in_upstream_keeps_last_as_revision() {
        let x = v("1.0-rc1-3");
        assert_eq!(x.upstream, "1.0-rc1");
        assert_eq!(x.revision, "3");
    }

    #[test]
    fn numeric_ordering() {
        assert!(v("1.10") > v("1.9"), "numeric, not lexicographic");
        assert!(v("1.2.3") < v("1.2.10"));
        assert!(v("10.0") > v("9.9.9"));
    }

    #[test]
    fn epoch_dominates() {
        assert!(v("1:0.1") > v("9.9"));
        assert!(v("2:0.1") > v("1:99"));
    }

    #[test]
    fn tilde_sorts_before_release() {
        assert!(v("1.0~rc1") < v("1.0"));
        assert!(v("1.0~rc1") < v("1.0~rc2"));
        assert!(v("1.0~~") < v("1.0~"));
    }

    #[test]
    fn revision_breaks_ties() {
        assert!(v("1.0-1") < v("1.0-2"));
        assert!(v("1.0-2ubuntu1") > v("1.0-2"));
        assert_eq!(v("1.0-1").cmp(&v("1.0-1")), Ordering::Equal);
    }

    #[test]
    fn letters_before_non_letters() {
        // Debian: letters sort before non-alphabetic characters.
        assert!(v("1.0a") < v("1.0+"));
        assert!(v("1.0+dfsg") > v("1.0"));
    }

    #[test]
    fn leading_zeros_ignored() {
        assert_eq!(v("1.02").cmp(&v("1.2")), Ordering::Equal);
        assert!(v("1.02.1") > v("1.2"));
    }

    #[test]
    fn bumped_increments_last_number() {
        assert_eq!(v("5.4.0").bumped(1).to_string(), "5.4.1");
        assert_eq!(v("2.31-0ubuntu9").bumped(2).upstream, "2.33");
        assert_eq!(v("2.31-0ubuntu9").bumped(2).revision, "0ubuntu9");
        assert!(v("5.4.0").bumped(1) > v("5.4.0"));
        assert_eq!(v("abc").bumped(3).to_string(), "abc.3");
    }

    #[test]
    fn ubuntu_style_chain_is_monotone() {
        let chain = [
            "2.27-3ubuntu1",
            "2.27-3ubuntu1.2",
            "2.27-3ubuntu1.4",
            "2.28-0ubuntu1",
            "2.31-0ubuntu9",
            "2.31-0ubuntu9.9",
        ];
        for w in chain.windows(2) {
            assert!(v(w[0]) < v(w[1]), "{} < {}", w[0], w[1]);
        }
    }
}
