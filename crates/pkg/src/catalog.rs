//! The package universe and its dependency resolver.
//!
//! A [`Catalog`] holds every package (all versions) that exists in the
//! synthetic distribution. The resolver computes *install closures* —
//! breadth-first expansion of dependencies picking the newest version that
//! satisfies each constraint — and tolerates dependency cycles (the paper's
//! Figure 1 explicitly models the `libc6`/`perl-base`/`dpkg` cycle).

use crate::arch::Arch;
use crate::meta::{Dependency, FileManifest, PackageId, PackageMeta, Section, VersionReq};
use crate::version::Version;
use xpl_util::{FxHashMap, FxHashSet, IStr};

/// Resolution failures.
#[derive(Debug, PartialEq, Eq)]
pub enum ResolveError {
    /// Dependency names a package that does not exist at all.
    UnknownPackage(IStr),
    /// Package exists but no version satisfies the constraint.
    NoMatchingVersion { name: IStr, req: String },
    /// Package exists but is not installable on the requested architecture.
    ArchMismatch { name: IStr, host: Arch },
}

impl std::fmt::Display for ResolveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ResolveError::UnknownPackage(n) => write!(f, "unknown package {n}"),
            ResolveError::NoMatchingVersion { name, req } => {
                write!(f, "no version of {name} satisfies {req}")
            }
            ResolveError::ArchMismatch { name, host } => {
                write!(f, "{name} not installable on {host}")
            }
        }
    }
}

impl std::error::Error for ResolveError {}

/// The package universe.
#[derive(Default)]
pub struct Catalog {
    packages: Vec<PackageMeta>,
    /// name → package ids, kept sorted by version ascending.
    by_name: FxHashMap<IStr, Vec<PackageId>>,
}

/// Builder-style argument bundle for [`Catalog::add`].
pub struct PackageSpec {
    pub name: String,
    pub version: Version,
    pub arch: Arch,
    pub section: Section,
    pub essential: bool,
    pub deb_size: u64,
    pub installed_size: u64,
    pub depends: Vec<Dependency>,
    pub manifest: FileManifest,
}

impl Catalog {
    pub fn new() -> Self {
        Catalog::default()
    }

    /// Register a package; returns its id.
    pub fn add(&mut self, spec: PackageSpec) -> PackageId {
        let id = PackageId(self.packages.len() as u32);
        let name = IStr::new(&spec.name);
        let meta = PackageMeta {
            id,
            name,
            version: spec.version,
            arch: spec.arch,
            section: spec.section,
            essential: spec.essential,
            deb_size: spec.deb_size,
            installed_size: spec.installed_size,
            depends: spec.depends,
            manifest: spec.manifest,
        };
        self.packages.push(meta);
        let packages = &self.packages;
        let versions = self.by_name.entry(name).or_default();
        versions.push(id);
        // Keep versions sorted ascending so "newest satisfying" is a
        // reverse scan.
        versions.sort_by(|&a, &b| {
            packages[a.0 as usize]
                .version
                .cmp(&packages[b.0 as usize].version)
        });
        id
    }

    pub fn get(&self, id: PackageId) -> &PackageMeta {
        &self.packages[id.0 as usize]
    }

    pub fn len(&self) -> usize {
        self.packages.len()
    }

    pub fn is_empty(&self) -> bool {
        self.packages.is_empty()
    }

    pub fn iter(&self) -> impl Iterator<Item = &PackageMeta> {
        self.packages.iter()
    }

    /// All ids registered under a name, version-ascending.
    pub fn versions_of(&self, name: IStr) -> &[PackageId] {
        self.by_name.get(&name).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Newest version of a package by name.
    pub fn newest(&self, name: &str) -> Option<PackageId> {
        self.by_name
            .get(&IStr::new(name))
            .and_then(|v| v.last().copied())
    }

    /// Newest version satisfying `req` and installable on `host`.
    pub fn best_match(
        &self,
        name: IStr,
        req: &VersionReq,
        host: Arch,
    ) -> Result<PackageId, ResolveError> {
        let versions = self
            .by_name
            .get(&name)
            .ok_or(ResolveError::UnknownPackage(name))?;
        let mut arch_ok = false;
        for &id in versions.iter().rev() {
            let p = self.get(id);
            if p.arch.installable_on(host) {
                arch_ok = true;
                if req.matches(&p.version) {
                    return Ok(id);
                }
            }
        }
        if arch_ok {
            Err(ResolveError::NoMatchingVersion {
                name,
                req: req.to_string(),
            })
        } else {
            Err(ResolveError::ArchMismatch { name, host })
        }
    }

    /// Compute the install closure of `roots`: every package required,
    /// directly or transitively, deduplicated, cycle-safe, in
    /// deterministic (BFS discovery) order. Roots come first.
    pub fn install_closure(
        &self,
        roots: &[PackageId],
        host: Arch,
    ) -> Result<Vec<PackageId>, ResolveError> {
        let mut seen: FxHashSet<PackageId> = FxHashSet::default();
        let mut order: Vec<PackageId> = Vec::new();
        let mut queue: std::collections::VecDeque<PackageId> = std::collections::VecDeque::new();
        for &r in roots {
            if seen.insert(r) {
                order.push(r);
                queue.push_back(r);
            }
        }
        while let Some(id) = queue.pop_front() {
            // Clone the dependency list to keep the borrow checker happy
            // (deps are tiny).
            let deps = self.get(id).depends.clone();
            for dep in deps {
                let target = self.best_match(dep.name, &dep.req, host)?;
                if seen.insert(target) {
                    order.push(target);
                    queue.push_back(target);
                }
            }
        }
        Ok(order)
    }

    /// The set of *dependency* packages of a closure: closure minus roots.
    pub fn dependency_set(
        &self,
        roots: &[PackageId],
        host: Arch,
    ) -> Result<Vec<PackageId>, ResolveError> {
        let root_set: FxHashSet<PackageId> = roots.iter().copied().collect();
        Ok(self
            .install_closure(roots, host)?
            .into_iter()
            .filter(|id| !root_set.contains(id))
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(name: &str, version: &str, deps: &[Dependency]) -> PackageSpec {
        PackageSpec {
            name: name.to_string(),
            version: Version::parse(version),
            arch: Arch::Amd64,
            section: Section::Misc,
            essential: false,
            deb_size: 10,
            installed_size: 30,
            depends: deps.to_vec(),
            manifest: FileManifest::default(),
        }
    }

    #[test]
    fn closure_simple_chain() {
        let mut c = Catalog::new();
        let libc = c.add(spec("libc6", "2.31", &[]));
        let ssl = c.add(spec("openssl", "1.1", &[Dependency::any("libc6")]));
        let nginx = c.add(spec("nginx", "1.18", &[Dependency::any("openssl")]));
        let closure = c.install_closure(&[nginx], Arch::Amd64).unwrap();
        assert_eq!(closure, vec![nginx, ssl, libc]);
    }

    #[test]
    fn closure_handles_cycles() {
        // The paper's libc6 / perl-base / dpkg cycle.
        let mut c = Catalog::new();
        let libc = c.add(spec("libc6", "2.31", &[Dependency::any("perl-base")]));
        let perl = c.add(spec("perl-base", "5.30", &[Dependency::any("dpkg")]));
        let dpkg = c.add(spec("dpkg", "1.19", &[Dependency::any("libc6")]));
        let closure = c.install_closure(&[libc], Arch::Amd64).unwrap();
        assert_eq!(closure.len(), 3);
        assert!(closure.contains(&perl) && closure.contains(&dpkg));
    }

    #[test]
    fn best_match_picks_newest_satisfying() {
        let mut c = Catalog::new();
        c.add(spec("redis", "5.0", &[]));
        let v6 = c.add(spec("redis", "6.0", &[]));
        let v4 = c.add(spec("redis", "4.0", &[]));
        assert_eq!(c.newest("redis"), Some(v6));
        let req = VersionReq::AtLeast(Version::parse("4.5"));
        assert_eq!(
            c.best_match(IStr::new("redis"), &req, Arch::Amd64).unwrap(),
            v6
        );
        let exact = VersionReq::Exact(Version::parse("4.0"));
        assert_eq!(
            c.best_match(IStr::new("redis"), &exact, Arch::Amd64)
                .unwrap(),
            v4
        );
    }

    #[test]
    fn unknown_package_errors() {
        let c = Catalog::new();
        let e = c.best_match(IStr::new("ghost"), &VersionReq::Any, Arch::Amd64);
        assert!(matches!(e, Err(ResolveError::UnknownPackage(_))));
    }

    #[test]
    fn no_matching_version_errors() {
        let mut c = Catalog::new();
        c.add(spec("tool", "1.0", &[]));
        let req = VersionReq::AtLeast(Version::parse("2.0"));
        let e = c.best_match(IStr::new("tool"), &req, Arch::Amd64);
        assert!(matches!(e, Err(ResolveError::NoMatchingVersion { .. })));
    }

    #[test]
    fn arch_mismatch_errors() {
        let mut c = Catalog::new();
        c.add(spec("tool", "1.0", &[]));
        let e = c.best_match(IStr::new("tool"), &VersionReq::Any, Arch::Arm64);
        assert!(matches!(e, Err(ResolveError::ArchMismatch { .. })));
    }

    #[test]
    fn all_arch_resolves_on_any_host() {
        let mut c = Catalog::new();
        let mut s = spec("docs", "1.0", &[]);
        s.arch = Arch::All;
        let id = c.add(s);
        assert_eq!(
            c.best_match(IStr::new("docs"), &VersionReq::Any, Arch::Arm64)
                .unwrap(),
            id
        );
    }

    #[test]
    fn dependency_set_excludes_roots() {
        let mut c = Catalog::new();
        let libc = c.add(spec("libc6", "2.31", &[]));
        let redis = c.add(spec("redis", "6.0", &[Dependency::any("libc6")]));
        let deps = c.dependency_set(&[redis], Arch::Amd64).unwrap();
        assert_eq!(deps, vec![libc]);
    }

    #[test]
    fn diamond_dependencies_deduplicate() {
        let mut c = Catalog::new();
        let libc = c.add(spec("libc6", "2.31", &[]));
        c.add(spec("liba", "1.0", &[Dependency::any("libc6")]));
        c.add(spec("libb", "1.0", &[Dependency::any("libc6")]));
        let app = c.add(spec(
            "app",
            "1.0",
            &[Dependency::any("liba"), Dependency::any("libb")],
        ));
        let closure = c.install_closure(&[app], Arch::Amd64).unwrap();
        assert_eq!(closure.len(), 4);
        assert_eq!(closure.iter().filter(|&&p| p == libc).count(), 1);
    }

    #[test]
    fn closure_is_deterministic() {
        let mut c = Catalog::new();
        c.add(spec("z", "1.0", &[]));
        c.add(spec("a", "1.0", &[Dependency::any("z")]));
        let root = c.add(spec(
            "m",
            "1.0",
            &[Dependency::any("a"), Dependency::any("z")],
        ));
        let c1 = c.install_closure(&[root], Arch::Amd64).unwrap();
        let c2 = c.install_closure(&[root], Arch::Amd64).unwrap();
        assert_eq!(c1, c2);
    }
}
