//! Per-image installed-package database (the `/var/lib/dpkg/status`
//! analogue).
//!
//! Tracks which packages are installed in an image and whether each was
//! requested explicitly (a *primary* package, in the paper's terms) or
//! pulled in as a dependency. Supports the autoremove-style query that
//! Algorithm 1's `removeUnusedDependencies` step needs.

use crate::arch::Arch;
use crate::catalog::{Catalog, ResolveError};
use crate::meta::PackageId;
use xpl_util::{FxHashMap, FxHashSet, IStr};

/// Why a package is installed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum InstallReason {
    /// Explicitly requested (primary package or base-image member).
    Manual,
    /// Pulled in as a dependency.
    Auto,
}

/// The installed-package database of one image.
#[derive(Clone, Default)]
pub struct DpkgDb {
    installed: FxHashMap<IStr, (PackageId, InstallReason)>,
}

impl DpkgDb {
    pub fn new() -> Self {
        DpkgDb::default()
    }

    /// Record `id` as installed. A later install of the same name replaces
    /// the entry (upgrade). Manual reason is sticky: once manual, a
    /// re-install as Auto keeps Manual.
    pub fn install(&mut self, catalog: &Catalog, id: PackageId, reason: InstallReason) {
        let name = catalog.get(id).name;
        let reason = match self.installed.get(&name) {
            Some((_, InstallReason::Manual)) => InstallReason::Manual,
            _ => reason,
        };
        self.installed.insert(name, (id, reason));
    }

    /// Remove by name; returns the removed package id if present.
    pub fn remove(&mut self, name: IStr) -> Option<PackageId> {
        self.installed.remove(&name).map(|(id, _)| id)
    }

    pub fn is_installed(&self, name: IStr) -> bool {
        self.installed.contains_key(&name)
    }

    pub fn installed_version_of(&self, name: IStr) -> Option<PackageId> {
        self.installed.get(&name).map(|(id, _)| *id)
    }

    pub fn reason_of(&self, name: IStr) -> Option<InstallReason> {
        self.installed.get(&name).map(|(_, r)| *r)
    }

    /// All installed package ids, sorted for determinism.
    pub fn installed_ids(&self) -> Vec<PackageId> {
        let mut v: Vec<PackageId> = self.installed.values().map(|(id, _)| *id).collect();
        v.sort();
        v
    }

    /// Ids of manually installed packages, sorted.
    pub fn manual_ids(&self) -> Vec<PackageId> {
        let mut v: Vec<PackageId> = self
            .installed
            .values()
            .filter(|(_, r)| *r == InstallReason::Manual)
            .map(|(id, _)| *id)
            .collect();
        v.sort();
        v
    }

    pub fn len(&self) -> usize {
        self.installed.len()
    }

    pub fn is_empty(&self) -> bool {
        self.installed.is_empty()
    }

    /// Mark a package manual (e.g. promoted to primary).
    pub fn mark_manual(&mut self, name: IStr) {
        if let Some(entry) = self.installed.get_mut(&name) {
            entry.1 = InstallReason::Manual;
        }
    }

    /// Autoremove candidates: auto-installed packages not in the install
    /// closure of any manual package. This implements Algorithm 1's
    /// `removeUnusedDependencies` after primary packages are deleted.
    pub fn unused_dependencies(
        &self,
        catalog: &Catalog,
        host: Arch,
    ) -> Result<Vec<PackageId>, ResolveError> {
        let manual = self.manual_ids();
        let needed: FxHashSet<PackageId> = catalog
            .install_closure(&manual, host)?
            .into_iter()
            .collect();
        // A package participates by identity of its installed version; an
        // auto package whose *name* is required but at a different version
        // is still "used" (the dependency is satisfied by what's there).
        let needed_names: FxHashSet<IStr> = needed.iter().map(|&id| catalog.get(id).name).collect();
        let mut out: Vec<PackageId> = self
            .installed
            .values()
            .filter(|(id, r)| {
                *r == InstallReason::Auto && !needed_names.contains(&catalog.get(*id).name)
            })
            .map(|(id, _)| *id)
            .collect();
        out.sort();
        Ok(out)
    }

    /// Render a dpkg-status-like text file; its bytes live inside the
    /// image filesystem, so images with different package sets differ in
    /// content even where their other files agree.
    pub fn render_status(&self, catalog: &Catalog) -> String {
        let mut ids = self.installed_ids();
        ids.sort_by_key(|&id| catalog.get(id).name.as_str());
        let mut out = String::new();
        for id in ids {
            let p = catalog.get(id);
            out.push_str(&format!(
                "Package: {}\nStatus: install ok installed\nVersion: {}\nArchitecture: {}\n\n",
                p.name, p.version, p.arch
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::PackageSpec;
    use crate::meta::{Dependency, FileManifest, Section};
    use crate::Version;

    fn spec(name: &str, version: &str, deps: &[Dependency]) -> PackageSpec {
        PackageSpec {
            name: name.to_string(),
            version: Version::parse(version),
            arch: Arch::Amd64,
            section: Section::Misc,
            essential: false,
            deb_size: 10,
            installed_size: 30,
            depends: deps.to_vec(),
            manifest: FileManifest::default(),
        }
    }

    fn world() -> (Catalog, PackageId, PackageId, PackageId) {
        let mut c = Catalog::new();
        let libc = c.add(spec("libc6", "2.31", &[]));
        let ssl = c.add(spec("openssl", "1.1", &[Dependency::any("libc6")]));
        let redis = c.add(spec("redis", "6.0", &[Dependency::any("openssl")]));
        (c, libc, ssl, redis)
    }

    #[test]
    fn install_and_query() {
        let (c, libc, _, redis) = world();
        let mut db = DpkgDb::new();
        db.install(&c, redis, InstallReason::Manual);
        db.install(&c, libc, InstallReason::Auto);
        assert!(db.is_installed(IStr::new("redis")));
        assert_eq!(db.reason_of(IStr::new("libc6")), Some(InstallReason::Auto));
        assert_eq!(db.len(), 2);
        assert_eq!(db.manual_ids(), vec![redis]);
    }

    #[test]
    fn manual_reason_is_sticky() {
        let (c, libc, _, _) = world();
        let mut db = DpkgDb::new();
        db.install(&c, libc, InstallReason::Manual);
        db.install(&c, libc, InstallReason::Auto);
        assert_eq!(
            db.reason_of(IStr::new("libc6")),
            Some(InstallReason::Manual)
        );
    }

    #[test]
    fn unused_dependencies_found_after_primary_removal() {
        let (c, libc, ssl, redis) = world();
        let mut db = DpkgDb::new();
        db.install(&c, redis, InstallReason::Manual);
        db.install(&c, ssl, InstallReason::Auto);
        db.install(&c, libc, InstallReason::Auto);
        // Nothing unused while redis is installed.
        assert!(db.unused_dependencies(&c, Arch::Amd64).unwrap().is_empty());
        // Remove the primary: both deps become unused.
        db.remove(IStr::new("redis"));
        let unused = db.unused_dependencies(&c, Arch::Amd64).unwrap();
        assert_eq!(unused, vec![libc, ssl]);
    }

    #[test]
    fn shared_dependency_kept_while_needed() {
        let mut c = Catalog::new();
        let libc = c.add(spec("libc6", "2.31", &[]));
        let a = c.add(spec("a", "1.0", &[Dependency::any("libc6")]));
        let b = c.add(spec("b", "1.0", &[Dependency::any("libc6")]));
        let mut db = DpkgDb::new();
        db.install(&c, a, InstallReason::Manual);
        db.install(&c, b, InstallReason::Manual);
        db.install(&c, libc, InstallReason::Auto);
        db.remove(IStr::new("a"));
        // libc still needed by b.
        assert!(db.unused_dependencies(&c, Arch::Amd64).unwrap().is_empty());
        db.remove(IStr::new("b"));
        assert_eq!(db.unused_dependencies(&c, Arch::Amd64).unwrap(), vec![libc]);
    }

    #[test]
    fn upgrade_replaces_version() {
        let mut c = Catalog::new();
        let v1 = c.add(spec("tool", "1.0", &[]));
        let v2 = c.add(spec("tool", "2.0", &[]));
        let mut db = DpkgDb::new();
        db.install(&c, v1, InstallReason::Manual);
        assert_eq!(db.installed_version_of(IStr::new("tool")), Some(v1));
        db.install(&c, v2, InstallReason::Manual);
        assert_eq!(db.installed_version_of(IStr::new("tool")), Some(v2));
        assert_eq!(db.len(), 1);
    }

    #[test]
    fn status_render_is_sorted_and_complete() {
        let (c, libc, ssl, redis) = world();
        let mut db = DpkgDb::new();
        db.install(&c, redis, InstallReason::Manual);
        db.install(&c, ssl, InstallReason::Auto);
        db.install(&c, libc, InstallReason::Auto);
        let s = db.render_status(&c);
        let li = s.find("Package: libc6").unwrap();
        let oi = s.find("Package: openssl").unwrap();
        let ri = s.find("Package: redis").unwrap();
        assert!(li < oi && oi < ri, "sorted by name");
        assert_eq!(s.matches("Status: install ok installed").count(), 3);
    }
}
