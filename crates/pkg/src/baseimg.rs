//! Base-image attributes.
//!
//! §III-C: every base image carries a quadruple `(type, distro, ver,
//! arch)` — guest OS type, distribution, distribution version, and
//! architecture. Master graphs are keyed by this quadruple, and the
//! base-image similarity `simBI` is defined over it.

use crate::arch::Arch;
use serde::{Deserialize, Serialize};

/// Guest OS type.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum OsType {
    Linux,
    Windows,
}

impl OsType {
    pub fn as_str(self) -> &'static str {
        match self {
            OsType::Linux => "linux",
            OsType::Windows => "windows",
        }
    }
}

/// The `(type, distro, ver, arch)` quadruple of §III-C.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct BaseImageAttrs {
    pub os_type: OsType,
    pub distro: String,
    pub version: String,
    pub arch: Arch,
}

impl BaseImageAttrs {
    pub fn ubuntu(version: &str, arch: Arch) -> Self {
        BaseImageAttrs {
            os_type: OsType::Linux,
            distro: "ubuntu".to_string(),
            version: version.to_string(),
            arch,
        }
    }

    /// Master-graph key string `[T,D,V,A]`.
    pub fn key(&self) -> String {
        format!(
            "[{},{},{},{}]",
            self.os_type.as_str(),
            self.distro,
            self.version,
            self.arch
        )
    }

    /// Base-image similarity `simBI`: the product of per-attribute
    /// indicator similarities. Identical quadruples give 1; any
    /// differing attribute gives 0 (an `all`-arch base image does not
    /// exist — architectures must match exactly at the image level).
    pub fn similarity(&self, other: &BaseImageAttrs) -> f64 {
        let mut s = 1.0;
        if self.os_type != other.os_type {
            s *= 0.0;
        }
        if self.distro != other.distro {
            s *= 0.0;
        }
        if self.version != other.version {
            s *= 0.0;
        }
        if self.arch != other.arch {
            s *= 0.0;
        }
        s
    }
}

impl std::fmt::Display for BaseImageAttrs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}/{} {} ({})",
            self.os_type.as_str(),
            self.distro,
            self.version,
            self.arch
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_attrs_similarity_one() {
        let a = BaseImageAttrs::ubuntu("16.04", Arch::Amd64);
        let b = BaseImageAttrs::ubuntu("16.04", Arch::Amd64);
        assert_eq!(a.similarity(&b), 1.0);
        assert_eq!(a.key(), b.key());
    }

    #[test]
    fn any_difference_zeroes_similarity() {
        let a = BaseImageAttrs::ubuntu("16.04", Arch::Amd64);
        assert_eq!(
            a.similarity(&BaseImageAttrs::ubuntu("18.04", Arch::Amd64)),
            0.0
        );
        assert_eq!(
            a.similarity(&BaseImageAttrs::ubuntu("16.04", Arch::Arm64)),
            0.0
        );
        let mut debian = a.clone();
        debian.distro = "debian".into();
        assert_eq!(a.similarity(&debian), 0.0);
    }

    #[test]
    fn key_format() {
        let a = BaseImageAttrs::ubuntu("16.04", Arch::Amd64);
        assert_eq!(a.key(), "[linux,ubuntu,16.04,amd64]");
    }
}
