//! Package metadata: identity, dependencies and file manifests.
//!
//! All sizes in this crate are *materialized* (real) bytes; the scale
//! model reports them ×1024. `installed_size` is always larger than
//! `deb_size` — the paper's publish-time analysis hinges on this
//! distinction ("installation size … always larger than the size of a
//! software packaged in the .deb or .rpm format").

use crate::arch::Arch;
use crate::version::Version;
use xpl_util::IStr;

/// Dense package identifier within a [`crate::Catalog`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PackageId(pub u32);

/// Broad package classification; drives synthetic file-population shape.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Section {
    /// Core OS bits (libc, coreutils, …) — part of every base image.
    Base,
    Libs,
    Interpreters,
    Servers,
    Databases,
    Web,
    Devel,
    Desktop,
    Editors,
    Utils,
    Misc,
}

impl Section {
    pub fn as_str(self) -> &'static str {
        match self {
            Section::Base => "base",
            Section::Libs => "libs",
            Section::Interpreters => "interpreters",
            Section::Servers => "servers",
            Section::Databases => "databases",
            Section::Web => "web",
            Section::Devel => "devel",
            Section::Desktop => "desktop",
            Section::Editors => "editors",
            Section::Utils => "utils",
            Section::Misc => "misc",
        }
    }
}

/// A version constraint in a dependency declaration.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum VersionReq {
    /// Any version satisfies.
    Any,
    /// Exactly this version (`=`).
    Exact(Version),
    /// This version or newer (`>=`).
    AtLeast(Version),
}

impl VersionReq {
    pub fn matches(&self, v: &Version) -> bool {
        match self {
            VersionReq::Any => true,
            VersionReq::Exact(x) => v == x,
            VersionReq::AtLeast(x) => v >= x,
        }
    }
}

impl std::fmt::Display for VersionReq {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VersionReq::Any => write!(f, "*"),
            VersionReq::Exact(v) => write!(f, "= {v}"),
            VersionReq::AtLeast(v) => write!(f, ">= {v}"),
        }
    }
}

/// One edge of the dependency graph.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Dependency {
    pub name: IStr,
    pub req: VersionReq,
}

impl Dependency {
    pub fn any(name: &str) -> Dependency {
        Dependency {
            name: IStr::new(name),
            req: VersionReq::Any,
        }
    }

    pub fn at_least(name: &str, v: &str) -> Dependency {
        Dependency {
            name: IStr::new(name),
            req: VersionReq::AtLeast(Version::parse(v)),
        }
    }
}

/// One file a package installs.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PkgFile {
    pub path: IStr,
    /// Materialized size in bytes.
    pub size: u32,
    /// Content seed: same seed + size ⇒ identical bytes, which is what
    /// makes file-level dedup (Mirage/Hemera) find cross-image redundancy.
    pub seed: u64,
}

/// The complete file population a package installs.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FileManifest {
    pub files: Vec<PkgFile>,
}

impl FileManifest {
    pub fn total_bytes(&self) -> u64 {
        self.files.iter().map(|f| f.size as u64).sum()
    }

    pub fn file_count(&self) -> usize {
        self.files.len()
    }
}

/// Full description of one package (one name+version+arch build).
#[derive(Clone, Debug)]
pub struct PackageMeta {
    pub id: PackageId,
    pub name: IStr,
    pub version: Version,
    pub arch: Arch,
    pub section: Section,
    /// Essential packages are part of every base image and are never
    /// exported or removed by decomposition.
    pub essential: bool,
    /// Packed (`.deb`) size, materialized bytes.
    pub deb_size: u64,
    /// Installed size, materialized bytes (≈ manifest total).
    pub installed_size: u64,
    pub depends: Vec<Dependency>,
    pub manifest: FileManifest,
}

impl PackageMeta {
    /// `name=version/arch` — the identity string used in digests and logs.
    pub fn identity(&self) -> String {
        format!("{}={}/{}", self.name, self.version, self.arch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn version_req_matching() {
        let v1 = Version::parse("1.2");
        let v2 = Version::parse("2.0");
        assert!(VersionReq::Any.matches(&v1));
        assert!(VersionReq::Exact(v1.clone()).matches(&v1));
        assert!(!VersionReq::Exact(v1.clone()).matches(&v2));
        assert!(VersionReq::AtLeast(v1.clone()).matches(&v2));
        assert!(!VersionReq::AtLeast(v2).matches(&v1));
    }

    #[test]
    fn manifest_totals() {
        let m = FileManifest {
            files: vec![
                PkgFile {
                    path: IStr::new("/usr/bin/tool"),
                    size: 100,
                    seed: 1,
                },
                PkgFile {
                    path: IStr::new("/usr/share/doc/tool"),
                    size: 50,
                    seed: 2,
                },
            ],
        };
        assert_eq!(m.total_bytes(), 150);
        assert_eq!(m.file_count(), 2);
    }

    #[test]
    fn dependency_constructors() {
        let d = Dependency::at_least("libc6", "2.27");
        assert_eq!(d.name.as_str(), "libc6");
        assert!(d.req.matches(&Version::parse("2.31")));
        assert!(!d.req.matches(&Version::parse("2.19")));
        assert_eq!(format!("{}", d.req), ">= 2.27");
    }
}
