//! Tables, schemas and secondary indexes.

use crate::value::Value;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Row identifier (monotonic per table, never reused).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct RowId(pub u64);

/// A column definition.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ColumnDef {
    pub name: String,
    /// Maintain a secondary index on this column.
    pub indexed: bool,
}

impl ColumnDef {
    pub fn plain(name: &str) -> Self {
        ColumnDef {
            name: name.to_string(),
            indexed: false,
        }
    }

    pub fn indexed(name: &str) -> Self {
        ColumnDef {
            name: name.to_string(),
            indexed: true,
        }
    }
}

/// Table schema.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Schema {
    pub name: String,
    pub columns: Vec<ColumnDef>,
}

impl Schema {
    pub fn new(name: &str, columns: Vec<ColumnDef>) -> Self {
        Schema {
            name: name.to_string(),
            columns,
        }
    }

    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c.name == name)
    }
}

/// Table errors.
#[derive(Debug, PartialEq, Eq)]
pub enum TableError {
    WrongArity { expected: usize, got: usize },
    NoSuchColumn(String),
    NoSuchRow(RowId),
    ColumnNotIndexed(String),
}

/// One table: rows + secondary indexes.
#[derive(Clone, Serialize, Deserialize)]
pub struct Table {
    pub schema: Schema,
    next_id: u64,
    rows: BTreeMap<RowId, Vec<Value>>,
    /// column index → (value → row ids).
    #[serde(skip)]
    indexes: Vec<Option<BTreeMap<Value, Vec<RowId>>>>,
}

impl Table {
    pub fn new(schema: Schema) -> Self {
        let indexes = schema
            .columns
            .iter()
            .map(|c| c.indexed.then(BTreeMap::new))
            .collect();
        Table {
            schema,
            next_id: 0,
            rows: BTreeMap::new(),
            indexes,
        }
    }

    /// Rebuild indexes after deserialization (indexes are derived state).
    pub fn rebuild_indexes(&mut self) {
        self.indexes = self
            .schema
            .columns
            .iter()
            .map(|c| c.indexed.then(BTreeMap::new))
            .collect();
        let rows: Vec<(RowId, Vec<Value>)> =
            self.rows.iter().map(|(k, v)| (*k, v.clone())).collect();
        for (id, row) in rows {
            self.index_row(id, &row);
        }
    }

    fn index_row(&mut self, id: RowId, row: &[Value]) {
        for (col, ix) in self.indexes.iter_mut().enumerate() {
            if let Some(ix) = ix {
                ix.entry(row[col].clone()).or_default().push(id);
            }
        }
    }

    fn unindex_row(&mut self, id: RowId, row: &[Value]) {
        for (col, ix) in self.indexes.iter_mut().enumerate() {
            if let Some(ix) = ix {
                if let Some(ids) = ix.get_mut(&row[col]) {
                    ids.retain(|&r| r != id);
                    if ids.is_empty() {
                        ix.remove(&row[col]);
                    }
                }
            }
        }
    }

    pub fn insert(&mut self, row: Vec<Value>) -> Result<RowId, TableError> {
        if row.len() != self.schema.columns.len() {
            return Err(TableError::WrongArity {
                expected: self.schema.columns.len(),
                got: row.len(),
            });
        }
        let id = RowId(self.next_id);
        self.next_id += 1;
        self.index_row(id, &row);
        self.rows.insert(id, row);
        Ok(id)
    }

    pub fn get(&self, id: RowId) -> Option<&[Value]> {
        self.rows.get(&id).map(Vec::as_slice)
    }

    pub fn update(&mut self, id: RowId, row: Vec<Value>) -> Result<Vec<Value>, TableError> {
        if row.len() != self.schema.columns.len() {
            return Err(TableError::WrongArity {
                expected: self.schema.columns.len(),
                got: row.len(),
            });
        }
        let old = self
            .rows
            .get(&id)
            .cloned()
            .ok_or(TableError::NoSuchRow(id))?;
        self.unindex_row(id, &old);
        self.index_row(id, &row);
        self.rows.insert(id, row);
        Ok(old)
    }

    pub fn delete(&mut self, id: RowId) -> Result<Vec<Value>, TableError> {
        let old = self.rows.remove(&id).ok_or(TableError::NoSuchRow(id))?;
        self.unindex_row(id, &old);
        Ok(old)
    }

    /// Exact-match lookup through a secondary index.
    pub fn find_by(&self, column: &str, value: &Value) -> Result<Vec<RowId>, TableError> {
        let col = self
            .schema
            .column_index(column)
            .ok_or_else(|| TableError::NoSuchColumn(column.to_string()))?;
        match &self.indexes[col] {
            Some(ix) => Ok(ix.get(value).cloned().unwrap_or_default()),
            None => Err(TableError::ColumnNotIndexed(column.to_string())),
        }
    }

    /// Full scan with a predicate (no index required).
    pub fn scan(&self, mut pred: impl FnMut(&[Value]) -> bool) -> Vec<RowId> {
        self.rows
            .iter()
            .filter(|(_, row)| pred(row))
            .map(|(id, _)| *id)
            .collect()
    }

    pub fn len(&self) -> usize {
        self.rows.len()
    }

    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    pub fn iter(&self) -> impl Iterator<Item = (RowId, &[Value])> {
        self.rows.iter().map(|(id, row)| (*id, row.as_slice()))
    }

    /// Total payload bytes across all rows (repository-size accounting for
    /// Hemera's in-DB small files).
    pub fn payload_bytes(&self) -> u64 {
        self.rows
            .values()
            .map(|r| r.iter().map(Value::payload_len).sum::<u64>())
            .sum()
    }

    /// Restore a row under a specific id (transaction rollback path).
    pub(crate) fn restore(&mut self, id: RowId, row: Vec<Value>) {
        self.index_row(id, &row);
        self.rows.insert(id, row);
        self.next_id = self.next_id.max(id.0 + 1);
    }

    /// Remove a row without returning it (rollback of an insert).
    pub(crate) fn unput(&mut self, id: RowId) {
        if let Some(old) = self.rows.remove(&id) {
            self.unindex_row(id, &old);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn files_table() -> Table {
        Table::new(Schema::new(
            "files",
            vec![
                ColumnDef::indexed("digest"),
                ColumnDef::plain("size"),
                ColumnDef::plain("content"),
            ],
        ))
    }

    #[test]
    fn insert_get() {
        let mut t = files_table();
        let id = t
            .insert(vec!["abc".into(), Value::Int(3), vec![1u8, 2, 3].into()])
            .unwrap();
        assert_eq!(t.get(id).unwrap()[1], Value::Int(3));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn arity_enforced() {
        let mut t = files_table();
        assert_eq!(
            t.insert(vec!["x".into()]),
            Err(TableError::WrongArity {
                expected: 3,
                got: 1
            })
        );
    }

    #[test]
    fn index_lookup() {
        let mut t = files_table();
        let a = t
            .insert(vec!["d1".into(), 1u64.into(), Value::Null])
            .unwrap();
        let b = t
            .insert(vec!["d2".into(), 2u64.into(), Value::Null])
            .unwrap();
        let c = t
            .insert(vec!["d1".into(), 3u64.into(), Value::Null])
            .unwrap();
        assert_eq!(t.find_by("digest", &"d1".into()).unwrap(), vec![a, c]);
        assert_eq!(t.find_by("digest", &"d2".into()).unwrap(), vec![b]);
        assert!(t.find_by("digest", &"d9".into()).unwrap().is_empty());
        assert!(matches!(
            t.find_by("size", &Value::Int(1)),
            Err(TableError::ColumnNotIndexed(_))
        ));
    }

    #[test]
    fn update_moves_index_entry() {
        let mut t = files_table();
        let id = t
            .insert(vec!["old".into(), 1u64.into(), Value::Null])
            .unwrap();
        t.update(id, vec!["new".into(), 1u64.into(), Value::Null])
            .unwrap();
        assert!(t.find_by("digest", &"old".into()).unwrap().is_empty());
        assert_eq!(t.find_by("digest", &"new".into()).unwrap(), vec![id]);
    }

    #[test]
    fn delete_cleans_index() {
        let mut t = files_table();
        let id = t
            .insert(vec!["d".into(), 1u64.into(), Value::Null])
            .unwrap();
        t.delete(id).unwrap();
        assert!(t.find_by("digest", &"d".into()).unwrap().is_empty());
        assert_eq!(t.delete(id), Err(TableError::NoSuchRow(id)));
    }

    #[test]
    fn scan_predicate() {
        let mut t = files_table();
        for i in 0..10i64 {
            t.insert(vec![format!("d{i}").into(), i.into(), Value::Null])
                .unwrap();
        }
        let big = t.scan(|r| r[1].as_int().unwrap() >= 7);
        assert_eq!(big.len(), 3);
    }

    #[test]
    fn payload_accounting() {
        let mut t = files_table();
        t.insert(vec!["dd".into(), 1u64.into(), vec![0u8; 100].into()])
            .unwrap();
        // 2 (text) + 8 (int) + 100 (blob).
        assert_eq!(t.payload_bytes(), 110);
    }

    #[test]
    fn rebuild_indexes_after_clearing() {
        let mut t = files_table();
        let id = t
            .insert(vec!["d".into(), 1u64.into(), Value::Null])
            .unwrap();
        t.rebuild_indexes();
        assert_eq!(t.find_by("digest", &"d".into()).unwrap(), vec![id]);
    }

    #[test]
    fn row_ids_not_reused_after_delete() {
        let mut t = files_table();
        let a = t
            .insert(vec!["a".into(), 1u64.into(), Value::Null])
            .unwrap();
        t.delete(a).unwrap();
        let b = t
            .insert(vec!["b".into(), 2u64.into(), Value::Null])
            .unwrap();
        assert!(b.0 > a.0);
    }
}
