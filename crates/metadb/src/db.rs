//! The database: named tables, charged I/O, transactions, persistence.

use crate::table::{RowId, Schema, Table, TableError};
use crate::value::Value;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::Arc;
use xpl_simio::SimDevice;

/// Database-level errors.
#[derive(Debug, PartialEq, Eq)]
pub enum DbError {
    NoSuchTable(String),
    TableExists(String),
    Table(TableError),
    NoActiveTransaction,
    Corrupt(String),
}

impl From<TableError> for DbError {
    fn from(e: TableError) -> Self {
        DbError::Table(e)
    }
}

impl std::fmt::Display for DbError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DbError::NoSuchTable(t) => write!(f, "no such table {t}"),
            DbError::TableExists(t) => write!(f, "table {t} already exists"),
            DbError::Table(e) => write!(f, "table error: {e:?}"),
            DbError::NoActiveTransaction => write!(f, "no active transaction"),
            DbError::Corrupt(why) => write!(f, "corrupt database image: {why}"),
        }
    }
}

impl std::error::Error for DbError {}

/// Undo-log entries for rollback.
enum Undo {
    Insert {
        table: String,
        id: RowId,
    },
    Update {
        table: String,
        id: RowId,
        old: Vec<Value>,
    },
    Delete {
        table: String,
        id: RowId,
        old: Vec<Value>,
    },
}

/// Serializable snapshot of the database (persistence format).
#[derive(Serialize, Deserialize)]
struct DbImage {
    tables: BTreeMap<String, Table>,
}

/// The embedded database.
pub struct Database {
    tables: BTreeMap<String, Table>,
    device: Option<Arc<SimDevice>>,
    undo: Vec<Undo>,
    in_tx: bool,
}

impl Database {
    /// In-memory database without cost charging (tests, tooling).
    pub fn new() -> Self {
        Database {
            tables: BTreeMap::new(),
            device: None,
            undo: Vec::new(),
            in_tx: false,
        }
    }

    /// Database whose row/blob traffic is charged to `device`.
    pub fn on_device(device: Arc<SimDevice>) -> Self {
        Database {
            tables: BTreeMap::new(),
            device: Some(device),
            undo: Vec::new(),
            in_tx: false,
        }
    }

    pub fn create_table(&mut self, schema: Schema) -> Result<(), DbError> {
        if self.tables.contains_key(&schema.name) {
            return Err(DbError::TableExists(schema.name));
        }
        self.tables.insert(schema.name.clone(), Table::new(schema));
        Ok(())
    }

    pub fn table(&self, name: &str) -> Result<&Table, DbError> {
        self.tables
            .get(name)
            .ok_or_else(|| DbError::NoSuchTable(name.to_string()))
    }

    fn table_mut(&mut self, name: &str) -> Result<&mut Table, DbError> {
        self.tables
            .get_mut(name)
            .ok_or_else(|| DbError::NoSuchTable(name.to_string()))
    }

    fn charge_write_row(&self, row: &[Value]) {
        if let Some(dev) = &self.device {
            dev.charge_db_write(1);
            let blob: u64 = row.iter().map(Value::payload_len).sum();
            if blob > 64 {
                // Payload beyond the row header moves through the device.
                dev.charge_write(blob);
            }
        }
    }

    fn charge_read_row(&self, row: &[Value]) {
        if let Some(dev) = &self.device {
            dev.charge_db_read(1);
            let blob: u64 = row.iter().map(Value::payload_len).sum();
            if blob > 64 {
                dev.charge_read(blob);
            }
        }
    }

    pub fn insert(&mut self, table: &str, row: Vec<Value>) -> Result<RowId, DbError> {
        self.charge_write_row(&row);
        let in_tx = self.in_tx;
        let id = self.table_mut(table)?.insert(row)?;
        if in_tx {
            self.undo.push(Undo::Insert {
                table: table.to_string(),
                id,
            });
        }
        Ok(id)
    }

    pub fn get(&self, table: &str, id: RowId) -> Result<Option<Vec<Value>>, DbError> {
        let t = self.table(table)?;
        let row = t.get(id).map(|r| r.to_vec());
        if let Some(r) = &row {
            self.charge_read_row(r);
        } else if let Some(dev) = &self.device {
            dev.charge_db_read(1);
        }
        Ok(row)
    }

    pub fn update(&mut self, table: &str, id: RowId, row: Vec<Value>) -> Result<(), DbError> {
        self.charge_write_row(&row);
        let in_tx = self.in_tx;
        let old = self.table_mut(table)?.update(id, row)?;
        if in_tx {
            self.undo.push(Undo::Update {
                table: table.to_string(),
                id,
                old,
            });
        }
        Ok(())
    }

    pub fn delete(&mut self, table: &str, id: RowId) -> Result<(), DbError> {
        if let Some(dev) = &self.device {
            dev.charge_db_write(1);
        }
        let in_tx = self.in_tx;
        let old = self.table_mut(table)?.delete(id)?;
        if in_tx {
            self.undo.push(Undo::Delete {
                table: table.to_string(),
                id,
                old,
            });
        }
        Ok(())
    }

    /// Index lookup; charges one row read per hit.
    pub fn find_by(&self, table: &str, column: &str, value: &Value) -> Result<Vec<RowId>, DbError> {
        let t = self.table(table)?;
        let ids = t.find_by(column, value)?;
        if let Some(dev) = &self.device {
            dev.charge_db_read(ids.len().max(1) as u64);
        }
        Ok(ids)
    }

    /// Begin a transaction (no nesting; idempotent begin is an error to
    /// catch logic bugs early).
    pub fn begin(&mut self) {
        assert!(!self.in_tx, "transaction already active");
        self.in_tx = true;
        self.undo.clear();
    }

    pub fn commit(&mut self) -> Result<(), DbError> {
        if !self.in_tx {
            return Err(DbError::NoActiveTransaction);
        }
        self.in_tx = false;
        self.undo.clear();
        if let Some(dev) = &self.device {
            dev.charge_fsync();
        }
        Ok(())
    }

    pub fn rollback(&mut self) -> Result<(), DbError> {
        if !self.in_tx {
            return Err(DbError::NoActiveTransaction);
        }
        self.in_tx = false;
        while let Some(u) = self.undo.pop() {
            match u {
                Undo::Insert { table, id } => {
                    if let Ok(t) = self.table_mut(&table) {
                        t.unput(id);
                    }
                }
                Undo::Update { table, id, old } | Undo::Delete { table, id, old } => {
                    if let Ok(t) = self.table_mut(&table) {
                        // For updates, restore overwrites; for deletes it
                        // reinserts — both via restore().
                        t.unput(id);
                        t.restore(id, old);
                    }
                }
            }
        }
        Ok(())
    }

    pub fn in_transaction(&self) -> bool {
        self.in_tx
    }

    /// Total payload bytes stored across all tables.
    pub fn payload_bytes(&self) -> u64 {
        self.tables.values().map(Table::payload_bytes).sum()
    }

    pub fn table_names(&self) -> Vec<&str> {
        self.tables.keys().map(String::as_str).collect()
    }

    /// Persist to a deterministic byte image.
    pub fn dump(&self) -> Vec<u8> {
        let image = DbImage {
            tables: self.tables.clone(),
        };
        // serde_json would be simpler but this is a binary format crate-
        // internally; use a compact hand-rolled encoding via serde +
        // JSON-in-bytes for robustness and determinism.
        serde_json::to_vec(&image).expect("db serialization cannot fail")
    }

    /// Load from [`Database::dump`] output.
    pub fn load(data: &[u8], device: Option<Arc<SimDevice>>) -> Result<Database, DbError> {
        let image: DbImage =
            serde_json::from_slice(data).map_err(|e| DbError::Corrupt(e.to_string()))?;
        let mut tables = image.tables;
        for t in tables.values_mut() {
            t.rebuild_indexes();
        }
        Ok(Database {
            tables,
            device,
            undo: Vec::new(),
            in_tx: false,
        })
    }
}

impl Default for Database {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::ColumnDef;
    use xpl_simio::SimEnv;

    fn db_with_table() -> Database {
        let mut db = Database::new();
        db.create_table(Schema::new(
            "pkg",
            vec![ColumnDef::indexed("name"), ColumnDef::plain("size")],
        ))
        .unwrap();
        db
    }

    #[test]
    fn create_and_duplicate_table() {
        let mut db = db_with_table();
        assert!(matches!(
            db.create_table(Schema::new("pkg", vec![])),
            Err(DbError::TableExists(_))
        ));
        assert_eq!(db.table_names(), vec!["pkg"]);
    }

    #[test]
    fn crud_cycle() {
        let mut db = db_with_table();
        let id = db
            .insert("pkg", vec!["redis".into(), 100u64.into()])
            .unwrap();
        assert_eq!(db.get("pkg", id).unwrap().unwrap()[0], "redis".into());
        db.update("pkg", id, vec!["redis".into(), 200u64.into()])
            .unwrap();
        assert_eq!(db.get("pkg", id).unwrap().unwrap()[1], Value::Int(200));
        db.delete("pkg", id).unwrap();
        assert_eq!(db.get("pkg", id).unwrap(), None);
    }

    #[test]
    fn rollback_undoes_everything() {
        let mut db = db_with_table();
        let keep = db.insert("pkg", vec!["keep".into(), 1u64.into()]).unwrap();
        db.begin();
        let tmp = db.insert("pkg", vec!["tmp".into(), 2u64.into()]).unwrap();
        db.update("pkg", keep, vec!["keep".into(), 99u64.into()])
            .unwrap();
        db.delete("pkg", keep).unwrap();
        db.rollback().unwrap();
        // Insert rolled back.
        assert_eq!(db.get("pkg", tmp).unwrap(), None);
        // Update + delete rolled back to the original row.
        let row = db.get("pkg", keep).unwrap().unwrap();
        assert_eq!(row[1], Value::Int(1));
        // Index consistent after rollback.
        assert_eq!(
            db.find_by("pkg", "name", &"keep".into()).unwrap(),
            vec![keep]
        );
        assert!(db.find_by("pkg", "name", &"tmp".into()).unwrap().is_empty());
    }

    #[test]
    fn commit_preserves_changes() {
        let mut db = db_with_table();
        db.begin();
        let id = db.insert("pkg", vec!["x".into(), 1u64.into()]).unwrap();
        db.commit().unwrap();
        assert!(db.get("pkg", id).unwrap().is_some());
        assert!(!db.in_transaction());
    }

    #[test]
    fn rollback_without_tx_errors() {
        let mut db = db_with_table();
        assert_eq!(db.rollback(), Err(DbError::NoActiveTransaction));
        assert_eq!(db.commit(), Err(DbError::NoActiveTransaction));
    }

    #[test]
    fn persistence_roundtrip() {
        let mut db = db_with_table();
        let id = db
            .insert("pkg", vec!["redis".into(), 42u64.into()])
            .unwrap();
        let bytes = db.dump();
        let back = Database::load(&bytes, None).unwrap();
        assert_eq!(back.get("pkg", id).unwrap().unwrap()[1], Value::Int(42));
        // Indexes rebuilt.
        assert_eq!(
            back.find_by("pkg", "name", &"redis".into()).unwrap(),
            vec![id]
        );
    }

    #[test]
    fn load_rejects_garbage() {
        assert!(matches!(
            Database::load(b"not a db", None),
            Err(DbError::Corrupt(_))
        ));
    }

    #[test]
    fn charged_operations_advance_clock() {
        let env = SimEnv::testbed();
        let mut db = Database::on_device(Arc::clone(&env.repo));
        db.create_table(Schema::new(
            "files",
            vec![ColumnDef::indexed("digest"), ColumnDef::plain("content")],
        ))
        .unwrap();
        let t0 = env.clock.now();
        db.insert("files", vec!["d".into(), vec![0u8; 4096].into()])
            .unwrap();
        assert!(
            env.clock.since(t0).as_nanos() > 0,
            "insert must charge time"
        );
        let t1 = env.clock.now();
        let ids = db.find_by("files", "digest", &"d".into()).unwrap();
        db.get("files", ids[0]).unwrap();
        assert!(env.clock.since(t1).as_nanos() > 0, "reads must charge time");
    }

    #[test]
    fn payload_bytes_accumulate() {
        let mut db = db_with_table();
        assert_eq!(db.payload_bytes(), 0);
        db.insert("pkg", vec!["abcd".into(), 1u64.into()]).unwrap();
        assert_eq!(db.payload_bytes(), 12); // 4 text + 8 int
    }
}
