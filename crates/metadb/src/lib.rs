//! `xpl-metadb` — an embedded, typed-row metadata database.
//!
//! Stand-in for the SQLite engine the paper uses for VMI metadata, and the
//! backing store for Hemera's "small files live in the database" design.
//! Features: named tables with typed columns, optional secondary indexes,
//! rollback-capable transactions (undo log), serde persistence, and
//! charged I/O through an optional [`xpl_simio::SimDevice`] — DB row
//! access is deliberately much cheaper than small-file access, which is
//! the asymmetry Hemera exploits.
//!
//! The API is deliberately small and typed rather than SQL-stringly: every
//! use in this workspace is a point query or index scan, and the paper
//! itself notes Hemera "transforms the VMI operations into database
//! operations based on simple SQL queries".

pub mod db;
pub mod table;
pub mod value;

pub use db::{Database, DbError};
pub use table::{ColumnDef, RowId, Schema, Table};
pub use value::Value;
