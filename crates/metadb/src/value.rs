//! Database cell values.

use serde::{Deserialize, Serialize};

/// A typed cell. Ordering across variants is total (`Null < Int < Text <
//  Blob`) so any value can key a secondary index.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Value {
    Null,
    Int(i64),
    Text(String),
    Blob(Vec<u8>),
}

impl Value {
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    pub fn as_text(&self) -> Option<&str> {
        match self {
            Value::Text(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_blob(&self) -> Option<&[u8]> {
        match self {
            Value::Blob(b) => Some(b),
            _ => None,
        }
    }

    /// Payload size in bytes (what the device charges for blob movement).
    pub fn payload_len(&self) -> u64 {
        match self {
            Value::Null => 0,
            Value::Int(_) => 8,
            Value::Text(s) => s.len() as u64,
            Value::Blob(b) => b.len() as u64,
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::Int(v as i64)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Text(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Text(v)
    }
}

impl From<Vec<u8>> for Value {
    fn from(v: Vec<u8>) -> Self {
        Value::Blob(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        assert_eq!(Value::Int(5).as_int(), Some(5));
        assert_eq!(Value::from("x").as_text(), Some("x"));
        assert_eq!(Value::from(vec![1u8, 2]).as_blob(), Some(&[1u8, 2][..]));
        assert_eq!(Value::Null.as_int(), None);
    }

    #[test]
    fn cross_variant_ordering_total() {
        let mut vals = vec![
            Value::Blob(vec![0]),
            Value::Text("a".into()),
            Value::Int(3),
            Value::Null,
        ];
        vals.sort();
        assert_eq!(
            vals,
            vec![
                Value::Null,
                Value::Int(3),
                Value::Text("a".into()),
                Value::Blob(vec![0]),
            ]
        );
    }

    #[test]
    fn payload_lengths() {
        assert_eq!(Value::Null.payload_len(), 0);
        assert_eq!(Value::Int(1).payload_len(), 8);
        assert_eq!(Value::from("abc").payload_len(), 3);
        assert_eq!(Value::from(vec![0u8; 10]).payload_len(), 10);
    }
}
