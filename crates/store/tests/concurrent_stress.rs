//! Concurrency stress tests for the sharded content store.
//!
//! Eight threads hammer `put` / `get` / `release` over deliberately
//! overlapping digests (every thread works the same 24 payloads, so
//! shard locks, refcount bumps and free-then-re-put races all trigger),
//! then the final state is compared against a sequential replay of the
//! exact same per-thread schedules:
//!
//! * `audit_refs` against the net reference counts the schedule implies
//!   (puts − releases per digest) — no leaks, no orphans;
//! * `unique_bytes` and `blob_count` equal to the sequential replay's;
//! * the structural + deep (`re-hash every blob`) self-audit passes.
//!
//! The schedule is seeded and deterministic; only the interleaving
//! varies between runs. Each thread releases at most what it has put so
//! far, so a release can never underflow no matter the interleaving —
//! which is exactly the discipline real stores follow (a manifest only
//! releases references it holds).

use std::sync::Arc;

use xpl_simio::SimEnv;
use xpl_store::cas::ContentStore;
use xpl_util::{FxHashMap, Sha256, SplitMix64};

#[derive(Clone, Copy, Debug)]
enum Op {
    Put(usize),
    Get(usize),
    Release(usize),
}

/// Deterministic per-thread schedules over `payloads` indices.
fn schedules(threads: usize, ops_per_thread: usize, payloads: usize, seed: u64) -> Vec<Vec<Op>> {
    (0..threads)
        .map(|t| {
            let mut rng = SplitMix64::new(seed ^ (t as u64)).derive("cas-stress");
            // Outstanding puts of this thread per payload: releases may
            // only consume these, keeping every schedule underflow-free.
            let mut held = vec![0u32; payloads];
            let mut ops = Vec::with_capacity(ops_per_thread);
            for _ in 0..ops_per_thread {
                let p = rng.next_below(payloads as u64) as usize;
                let roll = rng.next_f64();
                if roll < 0.5 {
                    held[p] += 1;
                    ops.push(Op::Put(p));
                } else if roll < 0.75 && held[p] > 0 {
                    held[p] -= 1;
                    ops.push(Op::Release(p));
                } else if held[p] > 0 {
                    ops.push(Op::Get(p));
                } else {
                    held[p] += 1;
                    ops.push(Op::Put(p));
                }
            }
            ops
        })
        .collect()
}

fn payload(i: usize) -> Vec<u8> {
    // Distinct lengths so unique_bytes mismatches are loud.
    let mut v = vec![0u8; 64 + i * 7];
    for (j, b) in v.iter_mut().enumerate() {
        *b = (i * 31 + j) as u8;
    }
    v
}

fn apply(cas: &ContentStore, payloads: &[Vec<u8>], op: Op) {
    match op {
        Op::Put(p) => {
            cas.put(&payloads[p]);
        }
        Op::Get(p) => {
            // The blob may have been freed by other threads' releases of
            // their own refs plus ours — both outcomes are legal; only
            // corruption (DigestMismatch) would be a bug.
            let digest = Sha256::digest(&payloads[p]);
            if let Err(e) = cas.get(&digest) {
                assert!(
                    matches!(e, xpl_store::cas::CasError::NotFound(_)),
                    "get returned {e:?}"
                );
            }
        }
        Op::Release(p) => {
            let digest = Sha256::digest(&payloads[p]);
            cas.release(&digest)
                .expect("schedule releases only held refs");
        }
    }
}

#[test]
fn eight_threads_hammering_matches_sequential_replay() {
    const THREADS: usize = 8;
    const OPS: usize = 600;
    const PAYLOADS: usize = 24;
    let payloads: Vec<Vec<u8>> = (0..PAYLOADS).map(payload).collect();
    let plans = schedules(THREADS, OPS, PAYLOADS, 0xCA5_57E55);

    // Concurrent execution.
    let env = SimEnv::testbed();
    let concurrent = ContentStore::new(Arc::clone(&env.repo));
    std::thread::scope(|s| {
        for plan in &plans {
            let cas = &concurrent;
            let payloads = &payloads;
            s.spawn(move || {
                for &op in plan {
                    apply(cas, payloads, op);
                }
            });
        }
    });

    // Sequential replay of the same schedules.
    let env2 = SimEnv::testbed();
    let sequential = ContentStore::new(Arc::clone(&env2.repo));
    for plan in &plans {
        for &op in plan {
            apply(&sequential, &payloads, op);
        }
    }

    // Net references per digest straight from the schedules.
    let mut expected: FxHashMap<_, u32> = FxHashMap::default();
    for plan in &plans {
        for &op in plan {
            match op {
                Op::Put(p) => *expected.entry(Sha256::digest(&payloads[p])).or_insert(0) += 1,
                Op::Release(p) => *expected.get_mut(&Sha256::digest(&payloads[p])).unwrap() -= 1,
                Op::Get(_) => {}
            }
        }
    }
    expected.retain(|_, refs| *refs > 0);

    concurrent
        .audit_refs(&expected)
        .expect("concurrent refcounts match the schedule");
    sequential
        .audit_refs(&expected)
        .expect("sequential refcounts match the schedule");
    assert_eq!(concurrent.unique_bytes(), sequential.unique_bytes());
    assert_eq!(concurrent.blob_count(), sequential.blob_count());
    concurrent
        .check_integrity(true)
        .expect("deep audit after the hammering");
}

#[test]
fn concurrent_add_ref_and_release_balance_out() {
    let env = SimEnv::testbed();
    let cas = ContentStore::new(Arc::clone(&env.repo));
    let (digest, _) = cas.put(b"contended-blob");
    std::thread::scope(|s| {
        for _ in 0..8 {
            let cas = &cas;
            s.spawn(move || {
                for _ in 0..200 {
                    cas.add_ref(digest).expect("blob stays live");
                    cas.release(&digest).expect("ref we just took");
                }
            });
        }
    });
    assert_eq!(cas.refs_of(&digest), Some(1), "only the original ref left");
    assert_eq!(
        cas.release(&digest).unwrap(),
        b"contended-blob".len() as u64
    );
    assert_eq!(cas.blob_count(), 0);
    assert_eq!(cas.unique_bytes(), 0);
}
