//! Oracle-facing image fingerprints.
//!
//! The churn replay driver runs every lifecycle trace against all stores
//! in lockstep and needs a fast, canonical notion of "the same image"
//! to compare retrievals differentially:
//!
//! * [`full_fingerprint`] — every effective file plus the installed
//!   package set. Snapshot stores (Qcow2, Gzip, Mirage, Hemera, block
//!   dedup) must reproduce this exactly.
//! * [`semantic_fingerprint`] — like the above but with junk paths and
//!   the dpkg status file excluded. Expelliarmus discards junk at
//!   publish time and regenerates the status file on assembly, so this
//!   is the strongest equality that holds across *all* stores.
//!
//! File content is derived from `(seed, size)`, so hashing those fields
//! is equivalent to hashing the bytes without materializing them.

use xpl_guestfs::{FsTree, Vmi};
use xpl_pkg::Catalog;
use xpl_util::{Digest, Sha256};

const STATUS_PATH: &str = "/var/lib/dpkg/status";

fn fingerprint(catalog: &Catalog, vmi: &Vmi, include_junk_and_status: bool) -> Digest {
    let mut h = Sha256::new();
    h.update(vmi.base.key().as_bytes());
    // Files, in FsTree's deterministic path order.
    for rec in vmi.fs.iter() {
        if !include_junk_and_status
            && (FsTree::is_junk_path(rec.path) || rec.path.as_str() == STATUS_PATH)
        {
            continue;
        }
        h.update(rec.path.as_str().as_bytes());
        h.update(&rec.size.to_le_bytes());
        h.update(&rec.seed.to_le_bytes());
    }
    // Installed package identities (BTreeSet: already sorted).
    for identity in vmi.installed_package_set(catalog) {
        h.update(identity.as_bytes());
        h.update(b"\n");
    }
    h.finalize()
}

/// Exact-content fingerprint (files + packages + base attributes).
pub fn full_fingerprint(catalog: &Catalog, vmi: &Vmi) -> Digest {
    fingerprint(catalog, vmi, true)
}

/// Junk- and status-file-insensitive fingerprint: the equality all five
/// evaluated stores must agree on after any retrieval.
pub fn semantic_fingerprint(catalog: &Catalog, vmi: &Vmi) -> Digest {
    fingerprint(catalog, vmi, false)
}

#[cfg(test)]
mod tests {
    use super::*;
    use xpl_guestfs::{FileOwner, FileRecord, FsTree};
    use xpl_pkg::{Arch, BaseImageAttrs, DpkgDb};
    use xpl_util::IStr;

    fn vmi_with(paths: &[(&str, u32, u64, FileOwner)]) -> Vmi {
        let mut fs = FsTree::new();
        for &(p, size, seed, owner) in paths {
            fs.add_file(FileRecord {
                path: IStr::new(p),
                size,
                seed,
                owner,
            });
        }
        Vmi::assemble(
            "fp",
            BaseImageAttrs::ubuntu("16.04", Arch::Amd64),
            fs,
            DpkgDb::new(),
            vec![],
        )
    }

    #[test]
    fn junk_only_changes_full_fingerprint() {
        let catalog = Catalog::new();
        let clean = vmi_with(&[("/usr/bin/a", 10, 1, FileOwner::System)]);
        let junky = vmi_with(&[
            ("/usr/bin/a", 10, 1, FileOwner::System),
            ("/var/cache/apt/archives/x", 99, 7, FileOwner::System),
        ]);
        assert_eq!(
            semantic_fingerprint(&catalog, &clean),
            semantic_fingerprint(&catalog, &junky)
        );
        assert_ne!(
            full_fingerprint(&catalog, &clean),
            full_fingerprint(&catalog, &junky)
        );
    }

    #[test]
    fn content_change_flips_both() {
        let catalog = Catalog::new();
        let a = vmi_with(&[("/usr/bin/a", 10, 1, FileOwner::System)]);
        let b = vmi_with(&[("/usr/bin/a", 10, 2, FileOwner::System)]);
        assert_ne!(
            semantic_fingerprint(&catalog, &a),
            semantic_fingerprint(&catalog, &b)
        );
        assert_ne!(
            full_fingerprint(&catalog, &a),
            full_fingerprint(&catalog, &b)
        );
    }

    #[test]
    fn user_data_counts_semantically() {
        let catalog = Catalog::new();
        let a = vmi_with(&[("/home/u/d.bin", 10, 1, FileOwner::UserData)]);
        let b = vmi_with(&[]);
        assert_ne!(
            semantic_fingerprint(&catalog, &a),
            semantic_fingerprint(&catalog, &b)
        );
    }
}
