//! `xpl-store` — content-addressed storage and the store interface.
//!
//! * [`cas`] — a charged content-addressed blob store (digest → bytes)
//!   with refcounts; the building block of Mirage, Hemera and the
//!   Expelliarmus package/base-image repositories.
//! * [`api`] — the [`ImageStore`] trait every evaluated system implements
//!   (publish / retrieve / delete / repository size / integrity audit),
//!   plus the report types whose fields become Table II columns and
//!   Figure 4/5 series.
//! * [`oracle`] — canonical image fingerprints the churn replay driver
//!   uses to compare retrievals differentially across stores.
//! * [`stripe`] — striped per-image-name locks: every store serializes
//!   same-name operations on one stripe while distinct images proceed in
//!   parallel.

pub mod api;
pub mod cas;
pub mod oracle;
pub mod stripe;

pub use api::{
    DeleteReport, ImageStore, MaintainReport, PublishReport, RetrieveReport, RetrieveRequest,
    StoreError,
};
pub use cas::{BlobCodec, CasObs, ContentStore, TierPolicy, TierSweep};
pub use oracle::{full_fingerprint, semantic_fingerprint};
pub use stripe::NameLocks;
