//! `xpl-store` — content-addressed storage and the store interface.
//!
//! * [`cas`] — a charged content-addressed blob store (digest → bytes)
//!   with refcounts; the building block of Mirage, Hemera and the
//!   Expelliarmus package/base-image repositories.
//! * [`api`] — the [`ImageStore`] trait every evaluated system implements
//!   (publish / retrieve / repository size), plus the report types whose
//!   fields become Table II columns and Figure 4/5 series.

pub mod api;
pub mod cas;

pub use api::{ImageStore, PublishReport, RetrieveReport, RetrieveRequest, StoreError};
pub use cas::ContentStore;
