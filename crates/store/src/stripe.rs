//! Striped per-image locks.
//!
//! Every store serializes operations on the *same* image name while
//! letting distinct images proceed in parallel. A [`NameLocks`] is a
//! fixed array of mutexes; an image name hashes to one stripe, so
//! same-name operations (publish vs. re-publish vs. delete) contend on
//! exactly one lock and different names almost always map to different
//! stripes. False sharing between two names on one stripe is safe — it
//! only serializes a little more than strictly necessary.
//!
//! Lock-order discipline: a stripe guard is always acquired *before* any
//! of the owning store's internal index locks and is never taken while
//! one is held, so stripes cannot participate in a cycle.

use std::sync::{Mutex, MutexGuard};

/// Number of stripes; a power of two so selection is a mask.
pub const STRIPE_COUNT: usize = 32;

/// Striped mutexes keyed by image name.
pub struct NameLocks {
    stripes: Vec<Mutex<()>>,
}

impl Default for NameLocks {
    fn default() -> Self {
        Self::new()
    }
}

impl NameLocks {
    pub fn new() -> Self {
        NameLocks {
            stripes: (0..STRIPE_COUNT).map(|_| Mutex::new(())).collect(),
        }
    }

    fn stripe_of(name: &str) -> usize {
        // FNV-1a over the name bytes; stable across runs (no RandomState).
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for &b in name.as_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0100_0000_01b3);
        }
        (h as usize) & (STRIPE_COUNT - 1)
    }

    /// Acquire the stripe guarding `name`. Poisoning is not recoverable
    /// here (a panicked publish leaves no protected invariant half
    /// written that the next op could repair), so propagate it.
    pub fn lock(&self, name: &str) -> MutexGuard<'_, ()> {
        self.stripes[Self::stripe_of(name)].lock().unwrap()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_name_same_stripe() {
        let locks = NameLocks::new();
        let g = locks.lock("image-a");
        // A different name on (almost certainly) a different stripe can
        // be acquired while the first guard is held.
        assert_ne!(
            NameLocks::stripe_of("image-a"),
            NameLocks::stripe_of("image-b"),
            "test names should hash apart"
        );
        let _g2 = locks.lock("image-b");
        drop(g);
    }

    #[test]
    fn stripe_selection_is_stable() {
        for name in ["x", "img-001", "a/very/long/image/name"] {
            assert_eq!(NameLocks::stripe_of(name), NameLocks::stripe_of(name));
        }
    }

    #[test]
    fn serializes_same_name_across_threads() {
        use std::sync::atomic::{AtomicU32, Ordering};
        let locks = NameLocks::new();
        let inside = AtomicU32::new(0);
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    for _ in 0..100 {
                        let _g = locks.lock("contended");
                        let now = inside.fetch_add(1, Ordering::SeqCst);
                        assert_eq!(now, 0, "two holders inside the same stripe");
                        inside.fetch_sub(1, Ordering::SeqCst);
                    }
                });
            }
        });
    }
}
