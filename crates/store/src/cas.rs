//! Charged content-addressed blob store.
//!
//! Blobs are keyed by SHA-256 digest and refcounted; `put` of an existing
//! digest is a dedup hit (no bytes written). Every operation charges the
//! owning [`SimDevice`].

use std::sync::Arc;

use xpl_simio::SimDevice;
use xpl_util::{Digest, FxHashMap, Sha256};

struct Blob {
    bytes: Vec<u8>,
    refs: u32,
}

/// The store.
pub struct ContentStore {
    device: Arc<SimDevice>,
    blobs: FxHashMap<Digest, Blob>,
    unique_bytes: u64,
    dedup_hits: u64,
}

/// CAS errors.
#[derive(Debug, PartialEq, Eq)]
pub enum CasError {
    NotFound(Digest),
    /// Stored bytes no longer match their digest (corruption detected).
    DigestMismatch(Digest),
}

impl ContentStore {
    pub fn new(device: Arc<SimDevice>) -> Self {
        ContentStore {
            device,
            blobs: FxHashMap::default(),
            unique_bytes: 0,
            dedup_hits: 0,
        }
    }

    /// Store bytes; returns `(digest, was_new)`. Dedup hits only charge a
    /// metadata lookup.
    pub fn put(&mut self, bytes: &[u8]) -> (Digest, bool) {
        let digest = Sha256::digest(bytes);
        (digest, self.put_with_digest(digest, bytes))
    }

    /// Store with a precomputed digest (hot path for generated content).
    pub fn put_with_digest(&mut self, digest: Digest, bytes: &[u8]) -> bool {
        if let Some(b) = self.blobs.get_mut(&digest) {
            b.refs += 1;
            self.dedup_hits += 1;
            self.device.charge_db_read(1); // index hit
            return false;
        }
        self.device.charge_create(bytes.len() as u64);
        self.device.charge_write(bytes.len() as u64);
        self.unique_bytes += bytes.len() as u64;
        self.blobs.insert(
            digest,
            Blob {
                bytes: bytes.to_vec(),
                refs: 1,
            },
        );
        true
    }

    /// Record a reference to existing content without providing bytes
    /// (used when the caller knows only the digest+size and the blob is
    /// already present).
    pub fn add_ref(&mut self, digest: Digest) -> Result<(), CasError> {
        match self.blobs.get_mut(&digest) {
            Some(b) => {
                b.refs += 1;
                self.dedup_hits += 1;
                self.device.charge_db_read(1);
                Ok(())
            }
            None => Err(CasError::NotFound(digest)),
        }
    }

    pub fn contains(&self, digest: &Digest) -> bool {
        self.blobs.contains_key(digest)
    }

    /// Read a blob back (charges open + read) and verify integrity.
    pub fn get(&self, digest: &Digest) -> Result<&[u8], CasError> {
        let b = self.blobs.get(digest).ok_or(CasError::NotFound(*digest))?;
        self.device.charge_open(b.bytes.len() as u64);
        self.device.charge_read(b.bytes.len() as u64);
        if Sha256::digest(&b.bytes) != *digest {
            return Err(CasError::DigestMismatch(*digest));
        }
        Ok(&b.bytes)
    }

    /// Size of a stored blob without reading it.
    pub fn size_of(&self, digest: &Digest) -> Option<u64> {
        self.blobs.get(digest).map(|b| b.bytes.len() as u64)
    }

    /// Drop one reference; frees the blob at zero. Returns freed bytes.
    pub fn release(&mut self, digest: &Digest) -> Result<u64, CasError> {
        let b = self
            .blobs
            .get_mut(digest)
            .ok_or(CasError::NotFound(*digest))?;
        b.refs -= 1;
        if b.refs == 0 {
            let freed = b.bytes.len() as u64;
            self.blobs.remove(digest);
            self.unique_bytes -= freed;
            self.device.charge_db_write(1);
            return Ok(freed);
        }
        Ok(0)
    }

    /// Unique stored payload bytes.
    pub fn unique_bytes(&self) -> u64 {
        self.unique_bytes
    }

    /// Reference count of a blob (introspection; charges nothing).
    pub fn refs_of(&self, digest: &Digest) -> Option<u32> {
        self.blobs.get(digest).map(|b| b.refs)
    }

    /// Iterate `(digest, refs, len)` over every stored blob without
    /// charging the device — the audit path of the churn oracle.
    pub fn iter_refs(&self) -> impl Iterator<Item = (Digest, u32, u64)> + '_ {
        self.blobs
            .iter()
            .map(|(d, b)| (*d, b.refs, b.bytes.len() as u64))
    }

    /// Audit refcounts against an externally computed expectation (digest
    /// → live references). Reports orphans (stored but unreferenced),
    /// leaks (refcount above the live count), and missing blobs.
    pub fn audit_refs(&self, expected: &FxHashMap<Digest, u32>) -> Result<(), String> {
        for (digest, refs, _) in self.iter_refs() {
            match expected.get(&digest) {
                None => return Err(format!("orphan blob {digest} with {refs} refs")),
                Some(&want) if want != refs => {
                    return Err(format!("blob {digest}: {refs} refs, expected {want}"))
                }
                _ => {}
            }
        }
        for (digest, want) in expected {
            if !self.contains(digest) {
                return Err(format!("missing blob {digest} ({want} live refs)"));
            }
        }
        Ok(())
    }

    pub fn blob_count(&self) -> usize {
        self.blobs.len()
    }

    pub fn dedup_hits(&self) -> u64 {
        self.dedup_hits
    }

    /// Test hook: corrupt a stored blob in place (failure injection).
    pub fn corrupt_for_test(&mut self, digest: &Digest) -> bool {
        if let Some(b) = self.blobs.get_mut(digest) {
            if let Some(x) = b.bytes.first_mut() {
                *x ^= 0xFF;
                return true;
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xpl_simio::SimEnv;

    fn store() -> (SimEnv, ContentStore) {
        let env = SimEnv::testbed();
        let cas = ContentStore::new(Arc::clone(&env.repo));
        (env, cas)
    }

    #[test]
    fn put_get_roundtrip() {
        let (_e, mut cas) = store();
        let (d, new) = cas.put(b"hello");
        assert!(new);
        assert_eq!(cas.get(&d).unwrap(), b"hello");
        assert_eq!(cas.unique_bytes(), 5);
    }

    #[test]
    fn duplicate_put_dedups() {
        let (env, mut cas) = store();
        cas.put(b"same-content");
        let before = env.repo.stats().bytes_written;
        let (_, new) = cas.put(b"same-content");
        assert!(!new);
        assert_eq!(
            env.repo.stats().bytes_written,
            before,
            "no bytes written on hit"
        );
        assert_eq!(cas.unique_bytes(), 12);
        assert_eq!(cas.dedup_hits(), 1);
    }

    #[test]
    fn release_refcounts() {
        let (_e, mut cas) = store();
        let (d, _) = cas.put(b"refcounted");
        cas.put(b"refcounted"); // refs = 2
        assert_eq!(cas.release(&d).unwrap(), 0);
        assert_eq!(cas.release(&d).unwrap(), 10);
        assert!(!cas.contains(&d));
        assert_eq!(cas.unique_bytes(), 0);
        assert_eq!(cas.release(&d), Err(CasError::NotFound(d)));
    }

    #[test]
    fn corruption_detected_on_read() {
        let (_e, mut cas) = store();
        let (d, _) = cas.put(b"important-bytes");
        assert!(cas.corrupt_for_test(&d));
        assert_eq!(cas.get(&d).err(), Some(CasError::DigestMismatch(d)));
    }

    #[test]
    fn add_ref_requires_existing() {
        let (_e, mut cas) = store();
        let missing = Sha256::digest(b"nope");
        assert!(matches!(cas.add_ref(missing), Err(CasError::NotFound(_))));
        let (d, _) = cas.put(b"yes");
        cas.add_ref(d).unwrap();
        assert_eq!(cas.release(&d).unwrap(), 0); // still one ref left
    }

    #[test]
    fn charges_time_for_stores_and_reads() {
        let (env, mut cas) = store();
        let t0 = env.clock.now();
        let (d, _) = cas.put(&vec![7u8; 10_000]);
        assert!(env.clock.since(t0).as_nanos() > 0);
        let t1 = env.clock.now();
        cas.get(&d).unwrap();
        assert!(env.clock.since(t1).as_nanos() > 0);
    }

    #[test]
    fn size_of_reports_without_charges() {
        let (env, mut cas) = store();
        let (d, _) = cas.put(b"sized");
        let reads_before = env.repo.stats().bytes_read;
        assert_eq!(cas.size_of(&d), Some(5));
        assert_eq!(env.repo.stats().bytes_read, reads_before);
    }
}
