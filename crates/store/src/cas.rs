//! Charged content-addressed blob store — sharded for shared-access
//! concurrency.
//!
//! Blobs are keyed by SHA-256 digest and refcounted; `put` of an existing
//! digest is a dedup hit (no bytes written). Every operation charges the
//! owning [`SimDevice`].
//!
//! # Concurrency model
//!
//! The store is split into [`SHARD_COUNT`] segments addressed by the
//! first byte of the digest, each behind its own `RwLock`, so `put`,
//! `get`, `add_ref` and `release` on *different* digests proceed in
//! parallel and only same-shard writers contend. Aggregate statistics
//! (`unique_bytes`, `dedup_hits`) are relaxed atomics readable without
//! any lock. All operations take `&self`; the type is `Send + Sync` and
//! shared freely across the worker pool.
//!
//! # Integrity
//!
//! `get` performs a *cheap* integrity check (stored length vs. the length
//! recorded at `put` time — catches truncation) on the hot path; the full
//! recompute-the-digest check is opt-in via [`ContentStore::verify`] /
//! [`ContentStore::check_integrity`] with `deep = true`, which is what
//! store-level `check_integrity_deep` audits call. Both surface
//! [`CasError::DigestMismatch`].
//!
//! # Durability
//!
//! [`ContentStore::new_durable`] attaches an `xpl-persist`
//! [`DurableContentStore`]: every mutation (`put`, `add_ref`,
//! `release`) writes through to the log-structured on-disk store
//! *before* the in-memory state changes, so the durable log always
//! holds a superset-ordered record of the in-memory history and
//! reopen-after-crash converges to the same blobs, refcounts and size
//! ledger ([`ContentStore::state_fingerprint`] is the convergence
//! check the churn oracle uses). A write-through failure is a panic:
//! by construction the harness only crashes the medium at operation
//! boundaries (and recovers before the next op), so an error here is a
//! subsystem bug, not an injected fault.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

use xpl_persist::{cas_state_fingerprint, DurableContentStore};
use xpl_simio::SimDevice;
use xpl_util::{Digest, FxHashMap, Sha256};

/// Number of digest-addressed segments. A power of two so the shard of a
/// digest is a mask of its first byte.
pub const SHARD_COUNT: usize = 16;

struct Blob {
    bytes: Arc<Vec<u8>>,
    /// Length recorded when the blob was stored; `get` checks the held
    /// bytes still match it (cheap truncation detection).
    stored_len: u64,
    refs: u32,
}

/// The store.
pub struct ContentStore {
    device: Arc<SimDevice>,
    shards: Vec<RwLock<FxHashMap<Digest, Blob>>>,
    unique_bytes: AtomicU64,
    dedup_hits: AtomicU64,
    /// Optional write-through durable backend (see module docs).
    durable: Option<Arc<DurableContentStore>>,
}

/// CAS errors.
#[derive(Debug, PartialEq, Eq)]
pub enum CasError {
    NotFound(Digest),
    /// Stored bytes no longer match their digest (corruption detected).
    DigestMismatch(Digest),
}

fn shard_of(digest: &Digest) -> usize {
    (digest.0[0] as usize) & (SHARD_COUNT - 1)
}

impl ContentStore {
    pub fn new(device: Arc<SimDevice>) -> Self {
        ContentStore {
            device,
            shards: (0..SHARD_COUNT)
                .map(|_| RwLock::new(FxHashMap::default()))
                .collect(),
            unique_bytes: AtomicU64::new(0),
            dedup_hits: AtomicU64::new(0),
            durable: None,
        }
    }

    /// A store whose mutations write through to a durable
    /// log-structured backend before touching memory.
    pub fn new_durable(device: Arc<SimDevice>, durable: Arc<DurableContentStore>) -> Self {
        let mut store = Self::new(device);
        store.durable = Some(durable);
        store
    }

    /// The attached durable backend, if any.
    pub fn durable(&self) -> Option<&Arc<DurableContentStore>> {
        self.durable.as_ref()
    }

    /// Canonical fingerprint of the logical state (blobs, refcounts,
    /// size ledger) — comparable against
    /// `DurableContentStore::state_fingerprint` to check that a
    /// recovered on-disk store converged to this in-memory one.
    pub fn state_fingerprint(&self) -> String {
        cas_state_fingerprint(self.snapshot_refs(), self.unique_bytes())
    }

    fn shard(&self, digest: &Digest) -> &RwLock<FxHashMap<Digest, Blob>> {
        &self.shards[shard_of(digest)]
    }

    /// Store bytes; returns `(digest, was_new)`. Dedup hits only charge a
    /// metadata lookup.
    pub fn put(&self, bytes: &[u8]) -> (Digest, bool) {
        let digest = Sha256::digest(bytes);
        (digest, self.put_with_digest(digest, bytes))
    }

    /// Store with a precomputed digest (hot path for generated content).
    pub fn put_with_digest(&self, digest: Digest, bytes: &[u8]) -> bool {
        let mut shard = self.shard(&digest).write().unwrap();
        if let Some(d) = &self.durable {
            let was_new = d
                .put_with_digest(digest, bytes)
                .expect("durable write-through: put");
            debug_assert_eq!(
                was_new,
                !shard.contains_key(&digest),
                "durable backend diverged on put"
            );
        }
        if let Some(b) = shard.get_mut(&digest) {
            b.refs += 1;
            self.dedup_hits.fetch_add(1, Ordering::Relaxed);
            self.device.charge_db_read(1); // index hit
            return false;
        }
        self.device.charge_create(bytes.len() as u64);
        self.device.charge_write(bytes.len() as u64);
        self.unique_bytes
            .fetch_add(bytes.len() as u64, Ordering::Relaxed);
        shard.insert(
            digest,
            Blob {
                bytes: Arc::new(bytes.to_vec()),
                stored_len: bytes.len() as u64,
                refs: 1,
            },
        );
        true
    }

    /// Record a reference to existing content without providing bytes
    /// (used when the caller knows only the digest+size and the blob is
    /// already present).
    pub fn add_ref(&self, digest: Digest) -> Result<(), CasError> {
        let mut shard = self.shard(&digest).write().unwrap();
        match shard.get_mut(&digest) {
            Some(b) => {
                if let Some(d) = &self.durable {
                    d.add_ref(digest).expect("durable write-through: add_ref");
                }
                b.refs += 1;
                self.dedup_hits.fetch_add(1, Ordering::Relaxed);
                self.device.charge_db_read(1);
                Ok(())
            }
            None => Err(CasError::NotFound(digest)),
        }
    }

    pub fn contains(&self, digest: &Digest) -> bool {
        self.shard(digest).read().unwrap().contains_key(digest)
    }

    /// Read a blob back (charges open + read). The hot path only checks
    /// the cheap length invariant; bit-level verification is the opt-in
    /// [`ContentStore::verify`] / deep [`ContentStore::check_integrity`].
    pub fn get(&self, digest: &Digest) -> Result<Arc<Vec<u8>>, CasError> {
        let shard = self.shard(digest).read().unwrap();
        let b = shard.get(digest).ok_or(CasError::NotFound(*digest))?;
        self.device.charge_open(b.bytes.len() as u64);
        self.device.charge_read(b.bytes.len() as u64);
        if b.bytes.len() as u64 != b.stored_len {
            return Err(CasError::DigestMismatch(*digest));
        }
        Ok(Arc::clone(&b.bytes))
    }

    /// Read `[start, start+len)` of a blob, clamped like a slice (a
    /// start at or past the end yields empty). Charges open + only the
    /// bytes actually returned — the CAS leg of the range-read path: a
    /// semantics-aware store that knows which blob bytes a disk range
    /// needs pays for those bytes, not the whole blob.
    pub fn get_range(&self, digest: &Digest, start: u64, len: u64) -> Result<Vec<u8>, CasError> {
        let shard = self.shard(digest).read().unwrap();
        let b = shard.get(digest).ok_or(CasError::NotFound(*digest))?;
        if b.bytes.len() as u64 != b.stored_len {
            return Err(CasError::DigestMismatch(*digest));
        }
        let end = start.saturating_add(len).min(b.bytes.len() as u64);
        let start = start.min(end);
        self.device.charge_open(end - start);
        self.device.charge_read(end - start);
        Ok(b.bytes[start as usize..end as usize].to_vec())
    }

    /// Full integrity check of one blob: recompute the SHA-256 and compare
    /// to the key (charges nothing — an audit, not a simulated read).
    pub fn verify(&self, digest: &Digest) -> Result<(), CasError> {
        let shard = self.shard(digest).read().unwrap();
        let b = shard.get(digest).ok_or(CasError::NotFound(*digest))?;
        if b.bytes.len() as u64 != b.stored_len || Sha256::digest(&b.bytes) != *digest {
            return Err(CasError::DigestMismatch(*digest));
        }
        Ok(())
    }

    /// Size of a stored blob without reading it.
    pub fn size_of(&self, digest: &Digest) -> Option<u64> {
        self.shard(digest)
            .read()
            .unwrap()
            .get(digest)
            .map(|b| b.bytes.len() as u64)
    }

    /// Drop one reference; frees the blob at zero. Returns freed bytes.
    pub fn release(&self, digest: &Digest) -> Result<u64, CasError> {
        let mut shard = self.shard(digest).write().unwrap();
        let b = shard.get_mut(digest).ok_or(CasError::NotFound(*digest))?;
        if let Some(d) = &self.durable {
            let freed = d.release(digest).expect("durable write-through: release");
            debug_assert_eq!(
                freed,
                if b.refs == 1 { b.stored_len } else { 0 },
                "durable backend diverged on release"
            );
        }
        b.refs -= 1;
        if b.refs == 0 {
            let freed = b.bytes.len() as u64;
            shard.remove(digest);
            self.unique_bytes.fetch_sub(freed, Ordering::Relaxed);
            self.device.charge_db_write(1);
            return Ok(freed);
        }
        Ok(0)
    }

    /// Unique stored payload bytes (lock-free read).
    pub fn unique_bytes(&self) -> u64 {
        self.unique_bytes.load(Ordering::Relaxed)
    }

    /// Reference count of a blob (introspection; charges nothing).
    pub fn refs_of(&self, digest: &Digest) -> Option<u32> {
        self.shard(digest)
            .read()
            .unwrap()
            .get(digest)
            .map(|b| b.refs)
    }

    /// Snapshot `(digest, refs, len)` of every stored blob without
    /// charging the device — the audit path of the churn oracle. Shards
    /// are read one at a time, so concurrent operations on other shards
    /// proceed; callers wanting a consistent view quiesce first.
    pub fn snapshot_refs(&self) -> Vec<(Digest, u32, u64)> {
        let mut out = Vec::new();
        for shard in &self.shards {
            let shard = shard.read().unwrap();
            out.extend(
                shard
                    .iter()
                    .map(|(d, b)| (*d, b.refs, b.bytes.len() as u64)),
            );
        }
        out
    }

    /// Audit refcounts against an externally computed expectation (digest
    /// → live references). Reports orphans (stored but unreferenced),
    /// leaks (refcount above the live count), and missing blobs.
    pub fn audit_refs(&self, expected: &FxHashMap<Digest, u32>) -> Result<(), String> {
        for (digest, refs, _) in self.snapshot_refs() {
            match expected.get(&digest) {
                None => return Err(format!("orphan blob {digest} with {refs} refs")),
                Some(&want) if want != refs => {
                    return Err(format!("blob {digest}: {refs} refs, expected {want}"))
                }
                _ => {}
            }
        }
        for (digest, want) in expected {
            if !self.contains(digest) {
                return Err(format!("missing blob {digest} ({want} live refs)"));
            }
        }
        Ok(())
    }

    /// Structural self-audit: per-blob length coherence and the
    /// `unique_bytes` ledger always; with `deep`, additionally recompute
    /// every blob's digest (the opt-in full corruption sweep).
    pub fn check_integrity(&self, deep: bool) -> Result<(), String> {
        let mut summed = 0u64;
        for shard in &self.shards {
            let shard = shard.read().unwrap();
            for (digest, b) in shard.iter() {
                if b.bytes.len() as u64 != b.stored_len {
                    return Err(format!(
                        "blob {digest}: {} bytes held, {} recorded",
                        b.bytes.len(),
                        b.stored_len
                    ));
                }
                if deep && Sha256::digest(&b.bytes) != *digest {
                    return Err(format!("blob {digest}: content no longer matches digest"));
                }
                summed += b.stored_len;
            }
        }
        let ledger = self.unique_bytes();
        if summed != ledger {
            return Err(format!(
                "unique_bytes ledger {ledger} vs {summed} bytes stored"
            ));
        }
        Ok(())
    }

    pub fn blob_count(&self) -> usize {
        self.shards.iter().map(|s| s.read().unwrap().len()).sum()
    }

    pub fn dedup_hits(&self) -> u64 {
        self.dedup_hits.load(Ordering::Relaxed)
    }

    /// Test hook: truncate a stored blob in place (failure injection the
    /// cheap `get`-path length check catches).
    pub fn corrupt_for_test(&self, digest: &Digest) -> bool {
        let mut shard = self.shard(digest).write().unwrap();
        if let Some(b) = shard.get_mut(digest) {
            if !b.bytes.is_empty() {
                Arc::make_mut(&mut b.bytes).pop();
                return true;
            }
        }
        false
    }

    /// Test hook: flip a bit without changing the length (failure
    /// injection only the deep digest check catches).
    pub fn corrupt_bitflip_for_test(&self, digest: &Digest) -> bool {
        let mut shard = self.shard(digest).write().unwrap();
        if let Some(b) = shard.get_mut(digest) {
            if let Some(x) = Arc::make_mut(&mut b.bytes).first_mut() {
                *x ^= 0xFF;
                return true;
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xpl_simio::SimEnv;

    fn store() -> (SimEnv, ContentStore) {
        let env = SimEnv::testbed();
        let cas = ContentStore::new(Arc::clone(&env.repo));
        (env, cas)
    }

    #[test]
    fn put_get_roundtrip() {
        let (_e, cas) = store();
        let (d, new) = cas.put(b"hello");
        assert!(new);
        assert_eq!(cas.get(&d).unwrap().as_slice(), b"hello");
        assert_eq!(cas.unique_bytes(), 5);
    }

    #[test]
    fn duplicate_put_dedups() {
        let (env, cas) = store();
        cas.put(b"same-content");
        let before = env.repo.stats().bytes_written;
        let (_, new) = cas.put(b"same-content");
        assert!(!new);
        assert_eq!(
            env.repo.stats().bytes_written,
            before,
            "no bytes written on hit"
        );
        assert_eq!(cas.unique_bytes(), 12);
        assert_eq!(cas.dedup_hits(), 1);
    }

    #[test]
    fn release_refcounts() {
        let (_e, cas) = store();
        let (d, _) = cas.put(b"refcounted");
        cas.put(b"refcounted"); // refs = 2
        assert_eq!(cas.release(&d).unwrap(), 0);
        assert_eq!(cas.release(&d).unwrap(), 10);
        assert!(!cas.contains(&d));
        assert_eq!(cas.unique_bytes(), 0);
        assert_eq!(cas.release(&d), Err(CasError::NotFound(d)));
    }

    #[test]
    fn truncation_detected_on_read() {
        let (_e, cas) = store();
        let (d, _) = cas.put(b"important-bytes");
        assert!(cas.corrupt_for_test(&d));
        assert_eq!(cas.get(&d).err(), Some(CasError::DigestMismatch(d)));
    }

    #[test]
    fn bitflip_caught_only_by_deep_check() {
        let (_e, cas) = store();
        let (d, _) = cas.put(b"important-bytes");
        assert!(cas.corrupt_bitflip_for_test(&d));
        // Same length: the cheap hot-path check passes…
        assert!(cas.get(&d).is_ok());
        assert!(cas.check_integrity(false).is_ok());
        // …the full digest recompute does not.
        assert_eq!(cas.verify(&d), Err(CasError::DigestMismatch(d)));
        assert!(cas.check_integrity(true).is_err());
    }

    #[test]
    fn get_range_slices_and_charges_only_the_span() {
        let (env, cas) = store();
        let payload: Vec<u8> = (0..10_000u32)
            .flat_map(|i| (i as u8).to_le_bytes())
            .collect();
        let (d, _) = cas.put(&payload);
        let before = env.repo.stats().bytes_read;
        let got = cas.get_range(&d, 1000, 64).unwrap();
        assert_eq!(got, &payload[1000..1064]);
        assert_eq!(env.repo.stats().bytes_read - before, 64);
        // Clamps like a slice.
        assert_eq!(cas.get_range(&d, 9990, 100).unwrap(), &payload[9990..]);
        assert_eq!(cas.get_range(&d, 50_000, 10).unwrap(), b"");
        let missing = Sha256::digest(b"nope");
        assert_eq!(
            cas.get_range(&missing, 0, 1),
            Err(CasError::NotFound(missing))
        );
    }

    #[test]
    fn verify_missing_blob_is_not_found() {
        let (_e, cas) = store();
        let missing = Sha256::digest(b"nope");
        assert_eq!(cas.verify(&missing), Err(CasError::NotFound(missing)));
    }

    #[test]
    fn add_ref_requires_existing() {
        let (_e, cas) = store();
        let missing = Sha256::digest(b"nope");
        assert!(matches!(cas.add_ref(missing), Err(CasError::NotFound(_))));
        let (d, _) = cas.put(b"yes");
        cas.add_ref(d).unwrap();
        assert_eq!(cas.release(&d).unwrap(), 0); // still one ref left
    }

    #[test]
    fn charges_time_for_stores_and_reads() {
        let (env, cas) = store();
        let t0 = env.clock.now();
        let (d, _) = cas.put(&vec![7u8; 10_000]);
        assert!(env.clock.since(t0).as_nanos() > 0);
        let t1 = env.clock.now();
        cas.get(&d).unwrap();
        assert!(env.clock.since(t1).as_nanos() > 0);
    }

    #[test]
    fn size_of_reports_without_charges() {
        let (env, cas) = store();
        let (d, _) = cas.put(b"sized");
        let reads_before = env.repo.stats().bytes_read;
        assert_eq!(cas.size_of(&d), Some(5));
        assert_eq!(env.repo.stats().bytes_read, reads_before);
    }

    #[test]
    fn blobs_spread_across_shards() {
        let (_e, cas) = store();
        for i in 0..256u32 {
            cas.put(&i.to_le_bytes());
        }
        assert_eq!(cas.blob_count(), 256);
        let populated = cas
            .shards
            .iter()
            .filter(|s| !s.read().unwrap().is_empty())
            .count();
        assert!(populated > SHARD_COUNT / 2, "only {populated} shards used");
        assert!(cas.check_integrity(true).is_ok());
    }

    #[test]
    fn durable_write_through_tracks_every_mutation() {
        use xpl_persist::{DurableConfig, DurableContentStore, MemFs};
        let env = SimEnv::testbed();
        let vfs = Arc::new(MemFs::new());
        let (durable, _) =
            DurableContentStore::open(vfs.clone(), DurableConfig::named("cas")).unwrap();
        let durable = Arc::new(durable);
        let cas = ContentStore::new_durable(Arc::clone(&env.repo), Arc::clone(&durable));

        let (d1, _) = cas.put(b"alpha");
        let (d2, _) = cas.put(b"beta");
        cas.put(b"alpha"); // dedup hit → durable add_ref
        cas.add_ref(d2).unwrap();
        cas.release(&d2).unwrap();
        cas.release(&d2).unwrap(); // beta dies on both sides
        assert_eq!(cas.state_fingerprint(), durable.state_fingerprint());
        assert_eq!(durable.refs_of(&d1), Some(2));
        assert!(!durable.contains(&d2));

        // Reopening from the medium converges to the same state.
        let (reopened, report) =
            DurableContentStore::open(vfs, DurableConfig::named("cas")).unwrap();
        assert_eq!(report.wal_records_replayed, 6);
        assert_eq!(reopened.state_fingerprint(), cas.state_fingerprint());
        assert_eq!(reopened.get(&d1).unwrap(), b"alpha");
    }

    #[test]
    fn shared_access_from_threads() {
        let (_e, cas) = store();
        let payloads: Vec<Vec<u8>> = (0..64u32).map(|i| i.to_le_bytes().to_vec()).collect();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for p in &payloads {
                        cas.put(p);
                    }
                });
            }
        });
        assert_eq!(cas.blob_count(), 64);
        for p in &payloads {
            assert_eq!(cas.refs_of(&Sha256::digest(p)), Some(4));
        }
        assert!(cas.check_integrity(true).is_ok());
    }
}
