//! Charged content-addressed blob store — sharded for shared-access
//! concurrency.
//!
//! Blobs are keyed by SHA-256 digest and refcounted; `put` of an existing
//! digest is a dedup hit (no bytes written). Every operation charges the
//! owning [`SimDevice`].
//!
//! # Concurrency model
//!
//! The store is split into [`SHARD_COUNT`] segments addressed by the
//! first byte of the digest, each behind its own `RwLock`, so `put`,
//! `get`, `add_ref` and `release` on *different* digests proceed in
//! parallel and only same-shard writers contend. Aggregate statistics
//! (`unique_bytes`, `dedup_hits`) are relaxed atomics readable without
//! any lock. All operations take `&self`; the type is `Send + Sync` and
//! shared freely across the worker pool.
//!
//! # Integrity
//!
//! `get` performs a *cheap* integrity check (stored length vs. the length
//! recorded at `put` time — catches truncation) on the hot path; the full
//! recompute-the-digest check is opt-in via [`ContentStore::verify`] /
//! [`ContentStore::check_integrity`] with `deep = true`, which is what
//! store-level `check_integrity_deep` audits call. Both surface
//! [`CasError::DigestMismatch`].
//!
//! # Durability
//!
//! [`ContentStore::new_durable`] attaches an `xpl-persist`
//! [`DurableContentStore`]: every mutation (`put`, `add_ref`,
//! `release`) writes through to the log-structured on-disk store
//! *before* the in-memory state changes, so the durable log always
//! holds a superset-ordered record of the in-memory history and
//! reopen-after-crash converges to the same blobs, refcounts and size
//! ledger ([`ContentStore::state_fingerprint`] is the convergence
//! check the churn oracle uses). A write-through failure is a panic:
//! by construction the harness only crashes the medium at operation
//! boundaries (and recovers before the next op), so an error here is a
//! subsystem bug, not an injected fault.
//!
//! # Codec tiers
//!
//! A store built [`ContentStore::with_tier`] keeps each blob's *memory
//! representation* in a blocked container ([`BlobCodec::Deflate`] for
//! density, [`BlobCodec::Lz4`] for decode speed) instead of raw bytes.
//! The tier is invisible to the simulated ledger: digests, refcounts,
//! `unique_bytes`, device charges, and [`state_fingerprint`] are all in
//! *logical* (uncompressed) bytes, so every simulated metric is
//! codec-invariant by construction — re-encoding a blob cannot change
//! what the oracle observes. What the codec does change is real CPU and
//! the physical footprint tracked by [`ContentStore::encoded_bytes`].
//!
//! Temperature drives the tier: `get` / `get_range` bump a per-blob
//! read counter (audits do not), and [`ContentStore::maintain`] sweeps
//! the store, re-encoding blobs whose counter crossed the policy's
//! threshold onto the hot codec and demoting cooled ones back to the
//! base, then halves every counter so temperature decays. The durable
//! backend always holds raw bytes — recompression is an in-memory
//! representation change, never a durable mutation.
//!
//! [`state_fingerprint`]: ContentStore::state_fingerprint

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

use xpl_obs::{Counter, Histogram, ObsSlot, Registry, Section};
use xpl_persist::{cas_state_fingerprint, DurableContentStore};
use xpl_simio::SimDevice;
use xpl_util::{Digest, FxHashMap, Sha256};

/// Number of digest-addressed segments. A power of two so the shard of a
/// digest is a mask of its first byte.
pub const SHARD_COUNT: usize = 16;

/// How a blob is represented in memory. `Raw` stores the bytes as-is;
/// the other two wrap them in the seekable blocked container with the
/// named inner codec, so range reads decode only the touched blocks.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BlobCodec {
    /// Uncompressed bytes (the default; zero CPU on either path).
    Raw,
    /// Blocked DEFLATE (`XBC1`) — dense, slower to decode.
    Deflate,
    /// Blocked LZ4 (`XBL1`) — lighter ratio, several-× faster decode.
    Lz4,
}

impl BlobCodec {
    pub fn name(self) -> &'static str {
        match self {
            BlobCodec::Raw => "raw",
            BlobCodec::Deflate => "deflate",
            BlobCodec::Lz4 => "lz4",
        }
    }

    fn encode(self, raw: &[u8]) -> Vec<u8> {
        match self {
            BlobCodec::Raw => raw.to_vec(),
            BlobCodec::Deflate => xpl_compress::blocked_compress(raw),
            BlobCodec::Lz4 => xpl_compress::blocked_compress_lz4(raw),
        }
    }
}

/// Which codec new blobs get, and what read temperature promotes a blob
/// onto the hot codec at the next [`ContentStore::maintain`] sweep.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TierPolicy {
    /// Codec for cold (and freshly stored) blobs.
    pub base: BlobCodec,
    /// Codec for hot blobs; `None` disables temperature moves.
    pub hot: Option<BlobCodec>,
    /// Reads since the last sweep at which a blob counts as hot.
    pub hot_reads: u64,
}

impl TierPolicy {
    /// Raw bytes, no tiering — the historical store behaviour.
    pub fn raw() -> Self {
        TierPolicy {
            base: BlobCodec::Raw,
            hot: None,
            hot_reads: 0,
        }
    }

    /// Everything on blocked DEFLATE (the dense all-cold tier).
    pub fn dense() -> Self {
        TierPolicy {
            base: BlobCodec::Deflate,
            hot: None,
            hot_reads: 0,
        }
    }

    /// Everything on blocked LZ4 (the all-hot fast tier).
    pub fn fast() -> Self {
        TierPolicy {
            base: BlobCodec::Lz4,
            hot: None,
            hot_reads: 0,
        }
    }

    /// DEFLATE base with LZ4 promotion for blobs read twice or more
    /// between sweeps — the default for the tiered stores.
    pub fn mixed() -> Self {
        TierPolicy {
            base: BlobCodec::Deflate,
            hot: Some(BlobCodec::Lz4),
            hot_reads: 2,
        }
    }

    /// Parse a CLI tier name; `None` for anything unknown.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "raw" => Some(Self::raw()),
            "deflate" | "dense" => Some(Self::dense()),
            "lz4" | "fast" => Some(Self::fast()),
            "mixed" => Some(Self::mixed()),
            _ => None,
        }
    }

    /// Canonical name of a preset policy (reports, CLI echo).
    pub fn describe(self) -> &'static str {
        if self == Self::raw() {
            "raw"
        } else if self == Self::dense() {
            "deflate"
        } else if self == Self::fast() {
            "lz4"
        } else if self == Self::mixed() {
            "mixed"
        } else {
            "custom"
        }
    }
}

/// Outcome of one [`ContentStore::maintain`] sweep.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TierSweep {
    /// Blobs examined.
    pub scanned: usize,
    /// Blobs re-encoded onto the hot codec.
    pub promoted: usize,
    /// Blobs re-encoded back to the base codec.
    pub demoted: usize,
    /// Net change of the physical [`ContentStore::encoded_bytes`]
    /// ledger (logical bytes never move).
    pub encoded_delta: i64,
}

/// Pre-resolved `xpl-obs` handles for the CAS hot paths. Every metric
/// here is op-count-derived and lives in the deterministic section: the
/// multiset of completed operations is thread-count-invariant, so the
/// relaxed adds commute to the same totals at any parallelism. Audits
/// (`verify`, `check_integrity`) bump nothing, mirroring the
/// read-temperature rule.
pub struct CasObs {
    put_new: Arc<Counter>,
    put_dedup: Arc<Counter>,
    put_logical_bytes: Arc<Counter>,
    put_encoded_bytes: Arc<Counter>,
    get_hits: Arc<Counter>,
    get_bytes: Arc<Counter>,
    range_hits: Arc<Counter>,
    range_bytes: Arc<Counter>,
    frees: Arc<Counter>,
    freed_bytes: Arc<Counter>,
    recompress_ops: Arc<Counter>,
    maintain_scanned: Arc<Counter>,
    maintain_promoted: Arc<Counter>,
    maintain_demoted: Arc<Counter>,
    blob_len: Arc<Histogram>,
}

impl CasObs {
    /// Resolve (or re-use) the `cas.*` metric family in `reg`. Stores
    /// sharing a registry share counters — aggregation across replicas
    /// is the sum of their op multisets, still deterministic.
    pub fn new(reg: &Registry) -> Self {
        CasObs {
            put_new: reg.counter("cas.put.new", Section::Det),
            put_dedup: reg.counter("cas.put.dedup", Section::Det),
            put_logical_bytes: reg.counter("cas.put.logical_bytes", Section::Det),
            put_encoded_bytes: reg.counter("cas.put.encoded_bytes", Section::Det),
            get_hits: reg.counter("cas.get.hits", Section::Det),
            get_bytes: reg.counter("cas.get.bytes", Section::Det),
            range_hits: reg.counter("cas.range.hits", Section::Det),
            range_bytes: reg.counter("cas.range.bytes", Section::Det),
            frees: reg.counter("cas.release.frees", Section::Det),
            freed_bytes: reg.counter("cas.release.freed_bytes", Section::Det),
            recompress_ops: reg.counter("cas.recompress.ops", Section::Det),
            maintain_scanned: reg.counter("cas.maintain.scanned", Section::Det),
            maintain_promoted: reg.counter("cas.maintain.promoted", Section::Det),
            maintain_demoted: reg.counter("cas.maintain.demoted", Section::Det),
            blob_len: reg.histogram("cas.blob_len", Section::Det),
        }
    }
}

struct Blob {
    /// The in-memory representation: raw bytes, or a blocked container
    /// per `codec`.
    enc: Arc<Vec<u8>>,
    codec: BlobCodec,
    /// Logical (uncompressed) length recorded at `put` time — the unit
    /// of every simulated charge and of the `unique_bytes` ledger.
    stored_len: u64,
    /// Encoded length recorded when `enc` was produced; the cheap
    /// truncation check on the hot path.
    enc_len: u64,
    refs: u32,
    /// Reads since the last maintenance sweep (audits don't count).
    reads: AtomicU64,
}

/// The store.
pub struct ContentStore {
    device: Arc<SimDevice>,
    shards: Vec<RwLock<FxHashMap<Digest, Blob>>>,
    unique_bytes: AtomicU64,
    /// Physical bytes held across all encoded representations.
    encoded_bytes: AtomicU64,
    dedup_hits: AtomicU64,
    tier: TierPolicy,
    /// Optional write-through durable backend (see module docs).
    durable: Option<Arc<DurableContentStore>>,
    /// Attach-once metrics handle; unattached hot paths pay one load
    /// and a branch.
    obs: ObsSlot<CasObs>,
}

/// CAS errors.
#[derive(Debug, PartialEq, Eq)]
pub enum CasError {
    NotFound(Digest),
    /// Stored bytes no longer match their digest (corruption detected).
    DigestMismatch(Digest),
}

fn shard_of(digest: &Digest) -> usize {
    (digest.0[0] as usize) & (SHARD_COUNT - 1)
}

impl ContentStore {
    pub fn new(device: Arc<SimDevice>) -> Self {
        ContentStore {
            device,
            shards: (0..SHARD_COUNT)
                .map(|_| RwLock::new(FxHashMap::default()))
                .collect(),
            unique_bytes: AtomicU64::new(0),
            encoded_bytes: AtomicU64::new(0),
            dedup_hits: AtomicU64::new(0),
            tier: TierPolicy::raw(),
            durable: None,
            obs: ObsSlot::new(),
        }
    }

    /// Attach an observability registry; the first attachment wins and
    /// later calls are no-ops. Also forwards to the durable backend, so
    /// a single attach instruments the full write-through stack.
    pub fn attach_obs(&self, reg: &Arc<Registry>) {
        let _ = self.obs.set(Arc::new(CasObs::new(reg)));
        if let Some(d) = &self.durable {
            d.attach_obs(reg);
        }
    }

    /// A store whose mutations write through to a durable
    /// log-structured backend before touching memory.
    pub fn new_durable(device: Arc<SimDevice>, durable: Arc<DurableContentStore>) -> Self {
        let mut store = Self::new(device);
        store.durable = Some(durable);
        store
    }

    /// Builder: select the codec tier for this store. Must be applied
    /// before any blob is stored (the policy governs encode-at-put).
    pub fn with_tier(mut self, tier: TierPolicy) -> Self {
        debug_assert_eq!(self.blob_count(), 0, "set the tier before storing blobs");
        self.tier = tier;
        self
    }

    /// The active codec tier policy.
    pub fn tier(&self) -> TierPolicy {
        self.tier
    }

    /// The attached durable backend, if any.
    pub fn durable(&self) -> Option<&Arc<DurableContentStore>> {
        self.durable.as_ref()
    }

    /// Canonical fingerprint of the logical state (blobs, refcounts,
    /// size ledger) — comparable against
    /// `DurableContentStore::state_fingerprint` to check that a
    /// recovered on-disk store converged to this in-memory one.
    pub fn state_fingerprint(&self) -> String {
        cas_state_fingerprint(self.snapshot_refs(), self.unique_bytes())
    }

    fn shard(&self, digest: &Digest) -> &RwLock<FxHashMap<Digest, Blob>> {
        &self.shards[shard_of(digest)]
    }

    /// Store bytes; returns `(digest, was_new)`. Dedup hits only charge a
    /// metadata lookup.
    pub fn put(&self, bytes: &[u8]) -> (Digest, bool) {
        let digest = Sha256::digest(bytes);
        (digest, self.put_with_digest(digest, bytes))
    }

    /// Store with a precomputed digest (hot path for generated content).
    pub fn put_with_digest(&self, digest: Digest, bytes: &[u8]) -> bool {
        let mut shard = self.shard(&digest).write().unwrap();
        if let Some(d) = &self.durable {
            let was_new = d
                .put_with_digest(digest, bytes)
                .expect("durable write-through: put");
            debug_assert_eq!(
                was_new,
                !shard.contains_key(&digest),
                "durable backend diverged on put"
            );
        }
        if let Some(b) = shard.get_mut(&digest) {
            b.refs += 1;
            self.dedup_hits.fetch_add(1, Ordering::Relaxed);
            self.device.charge_db_read(1); // index hit
            if let Some(o) = self.obs.get() {
                o.put_dedup.inc();
            }
            return false;
        }
        // All simulated charges are in logical bytes — the codec tier
        // changes the memory representation, never the ledger.
        self.device.charge_create(bytes.len() as u64);
        self.device.charge_write(bytes.len() as u64);
        self.unique_bytes
            .fetch_add(bytes.len() as u64, Ordering::Relaxed);
        let enc = self.tier.base.encode(bytes);
        self.encoded_bytes
            .fetch_add(enc.len() as u64, Ordering::Relaxed);
        if let Some(o) = self.obs.get() {
            o.put_new.inc();
            o.put_logical_bytes.add(bytes.len() as u64);
            o.put_encoded_bytes.add(enc.len() as u64);
            o.blob_len.record(bytes.len() as u64);
        }
        shard.insert(
            digest,
            Blob {
                enc_len: enc.len() as u64,
                enc: Arc::new(enc),
                codec: self.tier.base,
                stored_len: bytes.len() as u64,
                refs: 1,
                reads: AtomicU64::new(0),
            },
        );
        true
    }

    /// Decode a blob's in-memory representation back to logical bytes.
    /// Container-level failures (CRC, truncation) surface as
    /// `DigestMismatch` — the representation no longer matches what the
    /// digest promised.
    fn decode_blob(digest: &Digest, b: &Blob) -> Result<Arc<Vec<u8>>, CasError> {
        if b.enc.len() as u64 != b.enc_len {
            return Err(CasError::DigestMismatch(*digest));
        }
        match b.codec {
            BlobCodec::Raw => Ok(Arc::clone(&b.enc)),
            BlobCodec::Deflate | BlobCodec::Lz4 => {
                let raw = xpl_compress::blocked_decompress(&b.enc)
                    .map_err(|_| CasError::DigestMismatch(*digest))?;
                if raw.len() as u64 != b.stored_len {
                    return Err(CasError::DigestMismatch(*digest));
                }
                Ok(Arc::new(raw))
            }
        }
    }

    /// Record a reference to existing content without providing bytes
    /// (used when the caller knows only the digest+size and the blob is
    /// already present).
    pub fn add_ref(&self, digest: Digest) -> Result<(), CasError> {
        let mut shard = self.shard(&digest).write().unwrap();
        match shard.get_mut(&digest) {
            Some(b) => {
                if let Some(d) = &self.durable {
                    d.add_ref(digest).expect("durable write-through: add_ref");
                }
                b.refs += 1;
                self.dedup_hits.fetch_add(1, Ordering::Relaxed);
                self.device.charge_db_read(1);
                Ok(())
            }
            None => Err(CasError::NotFound(digest)),
        }
    }

    pub fn contains(&self, digest: &Digest) -> bool {
        self.shard(digest).read().unwrap().contains_key(digest)
    }

    /// Read a blob back (charges open + read). The hot path only checks
    /// the cheap length invariant; bit-level verification is the opt-in
    /// [`ContentStore::verify`] / deep [`ContentStore::check_integrity`].
    pub fn get(&self, digest: &Digest) -> Result<Arc<Vec<u8>>, CasError> {
        let shard = self.shard(digest).read().unwrap();
        let b = shard.get(digest).ok_or(CasError::NotFound(*digest))?;
        self.device.charge_open(b.stored_len);
        self.device.charge_read(b.stored_len);
        b.reads.fetch_add(1, Ordering::Relaxed);
        if let Some(o) = self.obs.get() {
            o.get_hits.inc();
            o.get_bytes.add(b.stored_len);
        }
        Self::decode_blob(digest, b)
    }

    /// Read `[start, start+len)` of a blob, clamped like a slice (a
    /// start at or past the end yields empty). Charges open + only the
    /// bytes actually returned — the CAS leg of the range-read path: a
    /// semantics-aware store that knows which blob bytes a disk range
    /// needs pays for those bytes, not the whole blob.
    pub fn get_range(&self, digest: &Digest, start: u64, len: u64) -> Result<Vec<u8>, CasError> {
        let shard = self.shard(digest).read().unwrap();
        let b = shard.get(digest).ok_or(CasError::NotFound(*digest))?;
        if b.enc.len() as u64 != b.enc_len {
            return Err(CasError::DigestMismatch(*digest));
        }
        // Charges follow the logical span regardless of codec, so range
        // costs are codec-invariant too.
        let end = start.saturating_add(len).min(b.stored_len);
        let start = start.min(end);
        self.device.charge_open(end - start);
        self.device.charge_read(end - start);
        b.reads.fetch_add(1, Ordering::Relaxed);
        if let Some(o) = self.obs.get() {
            o.range_hits.inc();
            o.range_bytes.add(end - start);
        }
        match b.codec {
            BlobCodec::Raw => Ok(b.enc[start as usize..end as usize].to_vec()),
            BlobCodec::Deflate | BlobCodec::Lz4 => {
                xpl_compress::read_range(&b.enc, start, end - start)
                    .map_err(|_| CasError::DigestMismatch(*digest))
            }
        }
    }

    /// Full integrity check of one blob: recompute the SHA-256 and compare
    /// to the key (charges nothing — an audit, not a simulated read).
    pub fn verify(&self, digest: &Digest) -> Result<(), CasError> {
        let shard = self.shard(digest).read().unwrap();
        let b = shard.get(digest).ok_or(CasError::NotFound(*digest))?;
        let raw = Self::decode_blob(digest, b)?;
        if Sha256::digest(&raw) != *digest {
            return Err(CasError::DigestMismatch(*digest));
        }
        Ok(())
    }

    /// Logical size of a stored blob without reading it.
    pub fn size_of(&self, digest: &Digest) -> Option<u64> {
        self.shard(digest)
            .read()
            .unwrap()
            .get(digest)
            .map(|b| b.stored_len)
    }

    /// Current in-memory codec of a blob.
    pub fn codec_of(&self, digest: &Digest) -> Option<BlobCodec> {
        self.shard(digest)
            .read()
            .unwrap()
            .get(digest)
            .map(|b| b.codec)
    }

    /// Reads since the last maintenance sweep (introspection).
    pub fn reads_of(&self, digest: &Digest) -> Option<u64> {
        self.shard(digest)
            .read()
            .unwrap()
            .get(digest)
            .map(|b| b.reads.load(Ordering::Relaxed))
    }

    /// Drop one reference; frees the blob at zero. Returns freed bytes.
    pub fn release(&self, digest: &Digest) -> Result<u64, CasError> {
        let mut shard = self.shard(digest).write().unwrap();
        let b = shard.get_mut(digest).ok_or(CasError::NotFound(*digest))?;
        if let Some(d) = &self.durable {
            let freed = d.release(digest).expect("durable write-through: release");
            debug_assert_eq!(
                freed,
                if b.refs == 1 { b.stored_len } else { 0 },
                "durable backend diverged on release"
            );
        }
        b.refs -= 1;
        if b.refs == 0 {
            let freed = b.stored_len;
            let enc_freed = b.enc_len;
            shard.remove(digest);
            self.unique_bytes.fetch_sub(freed, Ordering::Relaxed);
            self.encoded_bytes.fetch_sub(enc_freed, Ordering::Relaxed);
            self.device.charge_db_write(1);
            if let Some(o) = self.obs.get() {
                o.frees.inc();
                o.freed_bytes.add(freed);
            }
            return Ok(freed);
        }
        Ok(0)
    }

    /// Unique stored payload bytes, logical / uncompressed (lock-free
    /// read). Codec-invariant: the Figure-3 ledger and every fingerprint
    /// are built on this, never on the encoded representation.
    pub fn unique_bytes(&self) -> u64 {
        self.unique_bytes.load(Ordering::Relaxed)
    }

    /// Physical bytes held across all encoded representations (equals
    /// `unique_bytes` for a raw-tier store).
    pub fn encoded_bytes(&self) -> u64 {
        self.encoded_bytes.load(Ordering::Relaxed)
    }

    /// Reference count of a blob (introspection; charges nothing).
    pub fn refs_of(&self, digest: &Digest) -> Option<u32> {
        self.shard(digest)
            .read()
            .unwrap()
            .get(digest)
            .map(|b| b.refs)
    }

    /// Snapshot `(digest, refs, len)` of every stored blob without
    /// charging the device — the audit path of the churn oracle. Shards
    /// are read one at a time, so concurrent operations on other shards
    /// proceed; callers wanting a consistent view quiesce first.
    pub fn snapshot_refs(&self) -> Vec<(Digest, u32, u64)> {
        let mut out = Vec::new();
        for shard in &self.shards {
            let shard = shard.read().unwrap();
            out.extend(shard.iter().map(|(d, b)| (*d, b.refs, b.stored_len)));
        }
        out
    }

    /// Audit refcounts against an externally computed expectation (digest
    /// → live references). Reports orphans (stored but unreferenced),
    /// leaks (refcount above the live count), and missing blobs.
    pub fn audit_refs(&self, expected: &FxHashMap<Digest, u32>) -> Result<(), String> {
        for (digest, refs, _) in self.snapshot_refs() {
            match expected.get(&digest) {
                None => return Err(format!("orphan blob {digest} with {refs} refs")),
                Some(&want) if want != refs => {
                    return Err(format!("blob {digest}: {refs} refs, expected {want}"))
                }
                _ => {}
            }
        }
        for (digest, want) in expected {
            if !self.contains(digest) {
                return Err(format!("missing blob {digest} ({want} live refs)"));
            }
        }
        Ok(())
    }

    /// Structural self-audit: per-blob length coherence and the
    /// `unique_bytes` ledger always; with `deep`, additionally recompute
    /// every blob's digest (the opt-in full corruption sweep).
    pub fn check_integrity(&self, deep: bool) -> Result<(), String> {
        let mut summed = 0u64;
        let mut summed_enc = 0u64;
        for shard in &self.shards {
            let shard = shard.read().unwrap();
            for (digest, b) in shard.iter() {
                if b.enc.len() as u64 != b.enc_len {
                    return Err(format!(
                        "blob {digest}: {} encoded bytes held, {} recorded",
                        b.enc.len(),
                        b.enc_len
                    ));
                }
                if deep {
                    match Self::decode_blob(digest, b) {
                        Ok(raw) if Sha256::digest(&raw) == *digest => {}
                        _ => {
                            return Err(format!(
                                "blob {digest}: content no longer matches digest \
                                 ({} codec)",
                                b.codec.name()
                            ))
                        }
                    }
                }
                summed += b.stored_len;
                summed_enc += b.enc_len;
            }
        }
        let ledger = self.unique_bytes();
        if summed != ledger {
            return Err(format!(
                "unique_bytes ledger {ledger} vs {summed} bytes stored"
            ));
        }
        let enc_ledger = self.encoded_bytes();
        if summed_enc != enc_ledger {
            return Err(format!(
                "encoded_bytes ledger {enc_ledger} vs {summed_enc} bytes held"
            ));
        }
        Ok(())
    }

    /// Re-encode one blob's in-memory representation with `codec`,
    /// keeping the uncompressed digest pinned byte-identical: the blob
    /// is decoded, its SHA-256 recomputed and compared against the key,
    /// and only then re-encoded. Returns `(old, new)` encoded lengths.
    /// Refcounts, `unique_bytes`, and the durable backend (which always
    /// holds raw bytes) are untouched.
    pub fn recompress(&self, digest: &Digest, codec: BlobCodec) -> Result<(u64, u64), CasError> {
        let mut shard = self.shard(digest).write().unwrap();
        let b = shard.get_mut(digest).ok_or(CasError::NotFound(*digest))?;
        self.device.charge_db_write(1);
        if let Some(o) = self.obs.get() {
            o.recompress_ops.inc();
        }
        self.recompress_blob(digest, b, codec)
    }

    /// The locked inner half of [`ContentStore::recompress`]; shared
    /// with the maintenance sweep.
    fn recompress_blob(
        &self,
        digest: &Digest,
        b: &mut Blob,
        codec: BlobCodec,
    ) -> Result<(u64, u64), CasError> {
        let old = b.enc_len;
        if b.codec == codec {
            return Ok((old, old));
        }
        let raw = Self::decode_blob(digest, b)?;
        if Sha256::digest(&raw) != *digest {
            return Err(CasError::DigestMismatch(*digest));
        }
        let enc = codec.encode(&raw);
        let new = enc.len() as u64;
        b.enc = Arc::new(enc);
        b.enc_len = new;
        b.codec = codec;
        self.encoded_bytes.fetch_sub(old, Ordering::Relaxed);
        self.encoded_bytes.fetch_add(new, Ordering::Relaxed);
        Ok((old, new))
    }

    /// Temperature-driven maintenance: re-encode every blob whose read
    /// counter crossed the policy threshold onto the hot codec, demote
    /// cooled blobs back to the base codec, then halve all counters so
    /// temperature decays. A raw-tier store is a no-op. The sweep's
    /// outcome depends only on the multiset of completed reads, so it is
    /// deterministic at any thread count.
    pub fn maintain(&self) -> TierSweep {
        let mut sweep = TierSweep::default();
        if self.tier.base == BlobCodec::Raw {
            return sweep;
        }
        for shard in &self.shards {
            let mut shard = shard.write().unwrap();
            for (digest, b) in shard.iter_mut() {
                sweep.scanned += 1;
                let reads = b.reads.load(Ordering::Relaxed);
                let target = match self.tier.hot {
                    Some(hot) if reads >= self.tier.hot_reads => hot,
                    _ => self.tier.base,
                };
                if target != b.codec {
                    // A decode failure here means injected corruption;
                    // leave the blob for the audits to report.
                    if let Ok((old, new)) = self.recompress_blob(digest, b, target) {
                        if target == self.tier.base {
                            sweep.demoted += 1;
                        } else {
                            sweep.promoted += 1;
                        }
                        sweep.encoded_delta += new as i64 - old as i64;
                        self.device.charge_db_write(1);
                    }
                }
                b.reads.store(reads / 2, Ordering::Relaxed);
            }
        }
        if let Some(o) = self.obs.get() {
            o.maintain_scanned.add(sweep.scanned as u64);
            o.maintain_promoted.add(sweep.promoted as u64);
            o.maintain_demoted.add(sweep.demoted as u64);
        }
        sweep
    }

    pub fn blob_count(&self) -> usize {
        self.shards.iter().map(|s| s.read().unwrap().len()).sum()
    }

    pub fn dedup_hits(&self) -> u64 {
        self.dedup_hits.load(Ordering::Relaxed)
    }

    /// Test hook: truncate a stored blob's representation in place
    /// (failure injection the cheap length check catches).
    pub fn corrupt_for_test(&self, digest: &Digest) -> bool {
        let mut shard = self.shard(digest).write().unwrap();
        if let Some(b) = shard.get_mut(digest) {
            if !b.enc.is_empty() {
                Arc::make_mut(&mut b.enc).pop();
                return true;
            }
        }
        false
    }

    /// Test hook: flip a bit without changing the length. On a raw blob
    /// only the deep digest check catches this; on an encoded blob the
    /// container CRC may surface it on the read path too.
    pub fn corrupt_bitflip_for_test(&self, digest: &Digest) -> bool {
        let mut shard = self.shard(digest).write().unwrap();
        if let Some(b) = shard.get_mut(digest) {
            if let Some(x) = Arc::make_mut(&mut b.enc).first_mut() {
                *x ^= 0xFF;
                return true;
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xpl_simio::SimEnv;

    fn store() -> (SimEnv, ContentStore) {
        let env = SimEnv::testbed();
        let cas = ContentStore::new(Arc::clone(&env.repo));
        (env, cas)
    }

    #[test]
    fn put_get_roundtrip() {
        let (_e, cas) = store();
        let (d, new) = cas.put(b"hello");
        assert!(new);
        assert_eq!(cas.get(&d).unwrap().as_slice(), b"hello");
        assert_eq!(cas.unique_bytes(), 5);
    }

    #[test]
    fn duplicate_put_dedups() {
        let (env, cas) = store();
        cas.put(b"same-content");
        let before = env.repo.stats().bytes_written;
        let (_, new) = cas.put(b"same-content");
        assert!(!new);
        assert_eq!(
            env.repo.stats().bytes_written,
            before,
            "no bytes written on hit"
        );
        assert_eq!(cas.unique_bytes(), 12);
        assert_eq!(cas.dedup_hits(), 1);
    }

    #[test]
    fn release_refcounts() {
        let (_e, cas) = store();
        let (d, _) = cas.put(b"refcounted");
        cas.put(b"refcounted"); // refs = 2
        assert_eq!(cas.release(&d).unwrap(), 0);
        assert_eq!(cas.release(&d).unwrap(), 10);
        assert!(!cas.contains(&d));
        assert_eq!(cas.unique_bytes(), 0);
        assert_eq!(cas.release(&d), Err(CasError::NotFound(d)));
    }

    #[test]
    fn truncation_detected_on_read() {
        let (_e, cas) = store();
        let (d, _) = cas.put(b"important-bytes");
        assert!(cas.corrupt_for_test(&d));
        assert_eq!(cas.get(&d).err(), Some(CasError::DigestMismatch(d)));
    }

    #[test]
    fn bitflip_caught_only_by_deep_check() {
        let (_e, cas) = store();
        let (d, _) = cas.put(b"important-bytes");
        assert!(cas.corrupt_bitflip_for_test(&d));
        // Same length: the cheap hot-path check passes…
        assert!(cas.get(&d).is_ok());
        assert!(cas.check_integrity(false).is_ok());
        // …the full digest recompute does not.
        assert_eq!(cas.verify(&d), Err(CasError::DigestMismatch(d)));
        assert!(cas.check_integrity(true).is_err());
    }

    #[test]
    fn get_range_slices_and_charges_only_the_span() {
        let (env, cas) = store();
        let payload: Vec<u8> = (0..10_000u32)
            .flat_map(|i| (i as u8).to_le_bytes())
            .collect();
        let (d, _) = cas.put(&payload);
        let before = env.repo.stats().bytes_read;
        let got = cas.get_range(&d, 1000, 64).unwrap();
        assert_eq!(got, &payload[1000..1064]);
        assert_eq!(env.repo.stats().bytes_read - before, 64);
        // Clamps like a slice.
        assert_eq!(cas.get_range(&d, 9990, 100).unwrap(), &payload[9990..]);
        assert_eq!(cas.get_range(&d, 50_000, 10).unwrap(), b"");
        let missing = Sha256::digest(b"nope");
        assert_eq!(
            cas.get_range(&missing, 0, 1),
            Err(CasError::NotFound(missing))
        );
    }

    #[test]
    fn verify_missing_blob_is_not_found() {
        let (_e, cas) = store();
        let missing = Sha256::digest(b"nope");
        assert_eq!(cas.verify(&missing), Err(CasError::NotFound(missing)));
    }

    #[test]
    fn add_ref_requires_existing() {
        let (_e, cas) = store();
        let missing = Sha256::digest(b"nope");
        assert!(matches!(cas.add_ref(missing), Err(CasError::NotFound(_))));
        let (d, _) = cas.put(b"yes");
        cas.add_ref(d).unwrap();
        assert_eq!(cas.release(&d).unwrap(), 0); // still one ref left
    }

    #[test]
    fn charges_time_for_stores_and_reads() {
        let (env, cas) = store();
        let t0 = env.clock.now();
        let (d, _) = cas.put(&vec![7u8; 10_000]);
        assert!(env.clock.since(t0).as_nanos() > 0);
        let t1 = env.clock.now();
        cas.get(&d).unwrap();
        assert!(env.clock.since(t1).as_nanos() > 0);
    }

    #[test]
    fn size_of_reports_without_charges() {
        let (env, cas) = store();
        let (d, _) = cas.put(b"sized");
        let reads_before = env.repo.stats().bytes_read;
        assert_eq!(cas.size_of(&d), Some(5));
        assert_eq!(env.repo.stats().bytes_read, reads_before);
    }

    #[test]
    fn blobs_spread_across_shards() {
        let (_e, cas) = store();
        for i in 0..256u32 {
            cas.put(&i.to_le_bytes());
        }
        assert_eq!(cas.blob_count(), 256);
        let populated = cas
            .shards
            .iter()
            .filter(|s| !s.read().unwrap().is_empty())
            .count();
        assert!(populated > SHARD_COUNT / 2, "only {populated} shards used");
        assert!(cas.check_integrity(true).is_ok());
    }

    #[test]
    fn durable_write_through_tracks_every_mutation() {
        use xpl_persist::{DurableConfig, DurableContentStore, MemFs};
        let env = SimEnv::testbed();
        let vfs = Arc::new(MemFs::new());
        let (durable, _) =
            DurableContentStore::open(vfs.clone(), DurableConfig::named("cas")).unwrap();
        let durable = Arc::new(durable);
        let cas = ContentStore::new_durable(Arc::clone(&env.repo), Arc::clone(&durable));

        let (d1, _) = cas.put(b"alpha");
        let (d2, _) = cas.put(b"beta");
        cas.put(b"alpha"); // dedup hit → durable add_ref
        cas.add_ref(d2).unwrap();
        cas.release(&d2).unwrap();
        cas.release(&d2).unwrap(); // beta dies on both sides
        assert_eq!(cas.state_fingerprint(), durable.state_fingerprint());
        assert_eq!(durable.refs_of(&d1), Some(2));
        assert!(!durable.contains(&d2));

        // Reopening from the medium converges to the same state.
        let (reopened, report) =
            DurableContentStore::open(vfs, DurableConfig::named("cas")).unwrap();
        assert_eq!(report.wal_records_replayed, 6);
        assert_eq!(reopened.state_fingerprint(), cas.state_fingerprint());
        assert_eq!(reopened.get(&d1).unwrap(), b"alpha");
    }

    fn tiered(policy: TierPolicy) -> (SimEnv, ContentStore) {
        let env = SimEnv::testbed();
        let cas = ContentStore::new(Arc::clone(&env.repo)).with_tier(policy);
        (env, cas)
    }

    fn payload(seed: u64, n: usize) -> Vec<u8> {
        let mut rng = xpl_util::SplitMix64::new(seed);
        let mut out = Vec::with_capacity(n);
        while out.len() < n {
            match rng.next_u64() % 3 {
                0 => out.extend_from_slice(b"/usr/share/doc/"),
                1 => out.extend_from_slice(&rng.next_u64().to_le_bytes()),
                _ => out.extend_from_slice(&[0u8; 13]),
            }
        }
        out.truncate(n);
        out
    }

    #[test]
    fn tiered_store_roundtrips_and_ranges_like_raw() {
        let data = payload(1, 200_000);
        for policy in [TierPolicy::dense(), TierPolicy::fast(), TierPolicy::mixed()] {
            let (_e, cas) = tiered(policy);
            let (d, new) = cas.put(&data);
            assert!(new);
            assert_eq!(cas.get(&d).unwrap().as_slice(), data.as_slice());
            assert_eq!(cas.get_range(&d, 1000, 64).unwrap(), &data[1000..1064]);
            assert_eq!(
                cas.get_range(&d, data.len() as u64 - 5, 100).unwrap(),
                &data[data.len() - 5..]
            );
            assert_eq!(cas.get_range(&d, u64::MAX - 3, 100).unwrap(), b"");
            assert_eq!(cas.size_of(&d), Some(data.len() as u64));
            assert_eq!(cas.codec_of(&d), Some(policy.base));
            assert!(cas.check_integrity(true).is_ok());
            cas.verify(&d).unwrap();
        }
    }

    #[test]
    fn ledgers_and_charges_are_codec_invariant() {
        // The core tier invariant: the simulated ledger (unique_bytes,
        // device charges, fingerprints) is identical across codecs; only
        // encoded_bytes differs.
        let data = payload(2, 150_000);
        let mut fingerprints = Vec::new();
        let mut charges = Vec::new();
        for policy in [
            TierPolicy::raw(),
            TierPolicy::dense(),
            TierPolicy::fast(),
            TierPolicy::mixed(),
        ] {
            let (env, cas) = tiered(policy);
            let (d, _) = cas.put(&data);
            cas.get(&d).unwrap();
            cas.get_range(&d, 77, 4096).unwrap();
            assert_eq!(cas.unique_bytes(), data.len() as u64);
            fingerprints.push(cas.state_fingerprint());
            let s = env.repo.stats();
            charges.push((s.bytes_written, s.bytes_read));
            if policy.base == BlobCodec::Raw {
                assert_eq!(cas.encoded_bytes(), data.len() as u64);
            } else {
                assert!(cas.encoded_bytes() < data.len() as u64);
            }
        }
        assert!(fingerprints.windows(2).all(|w| w[0] == w[1]));
        assert!(charges.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn recompress_pins_the_digest_and_updates_the_physical_ledger() {
        let data = payload(3, 120_000);
        let (_e, cas) = tiered(TierPolicy::dense());
        let (d, _) = cas.put(&data);
        let enc_before = cas.encoded_bytes();
        let (old, new) = cas.recompress(&d, BlobCodec::Lz4).unwrap();
        assert_eq!(old, enc_before);
        assert_eq!(cas.encoded_bytes(), new);
        assert_eq!(cas.codec_of(&d), Some(BlobCodec::Lz4));
        // Logical state untouched: same digest, same bytes, same ledger.
        assert_eq!(cas.get(&d).unwrap().as_slice(), data.as_slice());
        assert_eq!(cas.unique_bytes(), data.len() as u64);
        assert!(cas.check_integrity(true).is_ok());
        // Idempotent on a same-codec call.
        assert_eq!(cas.recompress(&d, BlobCodec::Lz4).unwrap(), (new, new));
        let missing = Sha256::digest(b"nope");
        assert_eq!(
            cas.recompress(&missing, BlobCodec::Lz4),
            Err(CasError::NotFound(missing))
        );
    }

    #[test]
    fn maintain_promotes_hot_and_demotes_cold() {
        let (_e, cas) = tiered(TierPolicy::mixed());
        let hot = payload(4, 60_000);
        let cold = payload(5, 60_000);
        let (dh, _) = cas.put(&hot);
        let (dc, _) = cas.put(&cold);
        cas.get(&dh).unwrap();
        cas.get(&dh).unwrap();
        // Audits must not heat blobs up.
        cas.verify(&dc).unwrap();
        cas.check_integrity(true).unwrap();
        assert_eq!(cas.reads_of(&dc), Some(0));

        let sweep = cas.maintain();
        assert_eq!((sweep.scanned, sweep.promoted, sweep.demoted), (2, 1, 0));
        assert_eq!(cas.codec_of(&dh), Some(BlobCodec::Lz4));
        assert_eq!(cas.codec_of(&dc), Some(BlobCodec::Deflate));
        // Counters decay: 2 reads halve to 1, below the threshold, so a
        // quiet interval demotes the blob back to the dense tier.
        assert_eq!(cas.reads_of(&dh), Some(1));
        let sweep = cas.maintain();
        assert_eq!((sweep.promoted, sweep.demoted), (0, 1));
        assert_eq!(cas.codec_of(&dh), Some(BlobCodec::Deflate));
        assert!(cas.check_integrity(true).is_ok());
    }

    #[test]
    fn maintain_is_a_noop_for_raw_stores() {
        let (_e, cas) = store();
        cas.put(b"anything");
        assert_eq!(cas.maintain(), TierSweep::default());
    }

    #[test]
    fn tiered_corruption_is_caught_on_the_read_path() {
        // A bitflip in an encoded representation breaks the container
        // CRC (or magic), so even the cheap read path surfaces it.
        let data = payload(6, 50_000);
        let (_e, cas) = tiered(TierPolicy::dense());
        let (d, _) = cas.put(&data);
        assert!(cas.corrupt_bitflip_for_test(&d));
        assert_eq!(cas.get(&d).err(), Some(CasError::DigestMismatch(d)));
        assert!(cas.check_integrity(true).is_err());
    }

    #[test]
    fn tier_policy_parse_and_describe() {
        for (name, policy) in [
            ("deflate", TierPolicy::dense()),
            ("lz4", TierPolicy::fast()),
            ("mixed", TierPolicy::mixed()),
            ("raw", TierPolicy::raw()),
        ] {
            assert_eq!(TierPolicy::parse(name), Some(policy));
            assert_eq!(policy.describe(), name);
        }
        assert_eq!(TierPolicy::parse("dense"), Some(TierPolicy::dense()));
        assert_eq!(TierPolicy::parse("fast"), Some(TierPolicy::fast()));
        assert_eq!(TierPolicy::parse("zstd"), None);
        assert_eq!(TierPolicy::parse(""), None);
    }

    #[test]
    fn durable_fingerprint_converges_for_tiered_stores() {
        // The durable backend holds raw bytes regardless of tier;
        // recompression never writes through, and the convergence
        // fingerprint stays equal across representation changes.
        use xpl_persist::{DurableConfig, DurableContentStore, MemFs};
        let env = SimEnv::testbed();
        let vfs = Arc::new(MemFs::new());
        let (durable, _) =
            DurableContentStore::open(vfs.clone(), DurableConfig::named("cas")).unwrap();
        let cas = ContentStore::new_durable(Arc::clone(&env.repo), Arc::new(durable))
            .with_tier(TierPolicy::mixed());
        let data = payload(7, 80_000);
        let (d, _) = cas.put(&data);
        cas.get(&d).unwrap();
        cas.get(&d).unwrap();
        cas.maintain();
        assert_eq!(cas.codec_of(&d), Some(BlobCodec::Lz4));
        let (reopened, _) = DurableContentStore::open(vfs, DurableConfig::named("cas")).unwrap();
        assert_eq!(reopened.state_fingerprint(), cas.state_fingerprint());
        assert_eq!(reopened.get(&d).unwrap(), data);
    }

    #[test]
    fn shared_access_from_threads() {
        let (_e, cas) = store();
        let payloads: Vec<Vec<u8>> = (0..64u32).map(|i| i.to_le_bytes().to_vec()).collect();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for p in &payloads {
                        cas.put(p);
                    }
                });
            }
        });
        assert_eq!(cas.blob_count(), 64);
        for p in &payloads {
            assert_eq!(cas.refs_of(&Sha256::digest(p)), Some(4));
        }
        assert!(cas.check_integrity(true).is_ok());
    }
}
