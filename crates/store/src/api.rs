//! The store interface all five evaluated systems implement, and the
//! report types the experiment harness consumes.

use xpl_guestfs::{FileRecord, Vmi};
use xpl_pkg::{BaseImageAttrs, Catalog, ResolveError};
use xpl_simio::{Breakdown, SimDuration};

/// What a user asks the repository for.
///
/// Monolithic stores (Qcow2, Gzip, Mirage, Hemera) retrieve by `name`;
/// Expelliarmus assembles from `base` + `primary` + `user_data` and also
/// serves requests whose exact image was never uploaded (functional
/// retrieval), which the monolithic stores cannot.
#[derive(Clone)]
pub struct RetrieveRequest {
    pub name: String,
    pub base: BaseImageAttrs,
    /// Primary package names.
    pub primary: Vec<String>,
    /// User data to import.
    pub user_data: Vec<FileRecord>,
}

impl RetrieveRequest {
    /// The request that reproduces a previously published image.
    pub fn for_image(vmi: &Vmi, catalog: &Catalog) -> RetrieveRequest {
        RetrieveRequest {
            name: vmi.name.clone(),
            base: vmi.base.clone(),
            primary: vmi
                .primary
                .iter()
                .map(|&id| catalog.get(id).name.as_str().to_string())
                .collect(),
            user_data: vmi.user_data_files(),
        }
    }
}

/// Outcome of a publish.
#[derive(Clone, Debug, Default)]
pub struct PublishReport {
    pub image: String,
    /// Simulated wall time (Figure 4 series; Table II publish column).
    pub duration: SimDuration,
    pub breakdown: Breakdown,
    /// Unique bytes this publish added to the repository (materialized).
    pub bytes_added: u64,
    /// Packages exported (Expelliarmus) or files newly stored (Mirage /
    /// Hemera) — "units of new content".
    pub units_stored: usize,
    /// Semantic similarity against the master graph at upload time
    /// (Table II's SimG column; 0 for non-semantic stores).
    pub similarity: f64,
    /// Bytes dropped by replacing a previously published image of the
    /// same name (re-publish / upgrade); 0 on first-time publishes.
    pub bytes_freed: u64,
}

/// Outcome of a delete.
#[derive(Clone, Debug, Default)]
pub struct DeleteReport {
    pub image: String,
    /// Simulated wall time of the unlink + release work.
    pub duration: SimDuration,
    /// Bytes the repository shrank by (content no other image holds).
    pub bytes_freed: u64,
    /// Blobs / rows / entries physically removed.
    pub units_removed: usize,
}

/// Outcome of a retrieval.
#[derive(Clone, Debug, Default)]
pub struct RetrieveReport {
    pub image: String,
    /// Simulated wall time (Figure 5 series; Table II retrieval column).
    pub duration: SimDuration,
    /// Figure 5a's four bands for Expelliarmus; analogous phases for the
    /// baselines.
    pub breakdown: Breakdown,
    /// Bytes read from the repository (materialized).
    pub bytes_read: u64,
}

/// Outcome of a temperature-driven maintenance pass (codec tiering).
#[derive(Clone, Debug, Default)]
pub struct MaintainReport {
    /// Simulated wall time of the sweep.
    pub duration: SimDuration,
    /// Entries examined.
    pub scanned: usize,
    /// Entries re-encoded onto the hot (fast) codec.
    pub promoted: usize,
    /// Entries re-encoded back to the dense base codec.
    pub demoted: usize,
    /// Net change of the store's *reported* `repo_bytes` — nonzero only
    /// for stores whose footprint is the physical compressed size
    /// (Gzip); zero for CAS stores, whose ledger is logical bytes and
    /// therefore codec-invariant. The churn oracle shifts its expected
    /// size by exactly this much.
    pub bytes_delta: i64,
}

/// Store errors.
#[derive(Debug)]
pub enum StoreError {
    /// No such image / content in the repository.
    NotFound(String),
    /// Package resolution failed during assembly.
    Resolve(ResolveError),
    /// Integrity or format corruption.
    Corrupt(String),
    /// The request cannot be served by this store (e.g. functional
    /// retrieval from a monolithic store).
    Unsupported(String),
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::NotFound(what) => write!(f, "not found: {what}"),
            StoreError::Resolve(e) => write!(f, "resolve error: {e}"),
            StoreError::Corrupt(what) => write!(f, "corrupt: {what}"),
            StoreError::Unsupported(what) => write!(f, "unsupported: {what}"),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<ResolveError> for StoreError {
    fn from(e: ResolveError) -> Self {
        StoreError::Resolve(e)
    }
}

/// The interface of every evaluated VMI repository system.
///
/// All operations take `&self`: a store is a shared, internally
/// synchronized service, not an exclusively owned value. Same-name
/// operations serialize on a per-image stripe (see `xpl_store::stripe`);
/// operations on distinct images proceed in parallel. The `Send + Sync`
/// bound lets trait objects cross the worker pool.
pub trait ImageStore: Send + Sync {
    /// Display name ("Qcow2", "Mirage", "Expelliarmus", …).
    fn name(&self) -> &'static str;

    /// Publish an image into the repository.
    fn publish(&self, catalog: &Catalog, vmi: &Vmi) -> Result<PublishReport, StoreError>;

    /// Retrieve (reassemble) an image.
    fn retrieve(
        &self,
        catalog: &Catalog,
        request: &RetrieveRequest,
    ) -> Result<(Vmi, RetrieveReport), StoreError>;

    /// Retrieve only disk bytes `[start, start+len)` of an image —
    /// clamped to the virtual disk size like a slice. The report's
    /// `bytes_read` is what the repository actually moved to serve the
    /// range, which is the figure of merit: a range-aware store reads a
    /// handful of compressed blocks or blob slices, while this default
    /// reassembles the whole image and slices it (correct for every
    /// store, but paying full retrieval cost — the baseline the blocked
    /// codec beats).
    fn retrieve_range(
        &self,
        catalog: &Catalog,
        request: &RetrieveRequest,
        start: u64,
        len: u64,
    ) -> Result<(Vec<u8>, RetrieveReport), StoreError> {
        let (vmi, report) = self.retrieve(catalog, request)?;
        let size = vmi.disk.virtual_size();
        let end = start.saturating_add(len).min(size);
        let start = start.min(end);
        let bytes = vmi
            .disk
            .read_at(start, (end - start) as usize)
            .map_err(|e| StoreError::Corrupt(format!("range read: {e}")))?;
        Ok((bytes, report))
    }

    /// Delete a published image, releasing repository content no other
    /// live image references. Content shared with other images survives
    /// (refcounts guard it); monolithic stores simply unlink the entry.
    fn delete(&self, name: &str) -> Result<DeleteReport, StoreError>;

    /// Current repository footprint in materialized bytes (×1024 =
    /// nominal; the Figure 3 y-axis).
    fn repo_bytes(&self) -> u64;

    /// Audit internal bookkeeping: blob refcounts vs live manifests,
    /// index/entry coherence, size accounting. Cheap enough for the
    /// churn oracle to call after every simulated operation.
    fn check_integrity(&self) -> Result<(), String> {
        Ok(())
    }

    /// Everything [`ImageStore::check_integrity`] audits plus full
    /// content verification (re-hash every stored blob). Too expensive
    /// for the per-operation oracle; run at quiesce points and at the
    /// end of a replay.
    fn check_integrity_deep(&self) -> Result<(), String> {
        self.check_integrity()
    }

    /// Temperature-driven maintenance: re-encode hot content onto the
    /// fast codec and demote cooled content to the dense one, per the
    /// store's tier policy. Logical content and digests are pinned —
    /// only the in-memory representation (and, for physically-sized
    /// stores, `repo_bytes` by the returned `bytes_delta`) may change.
    /// Stores without codec tiers return the default (all-zero) report.
    fn maintain(&self) -> MaintainReport {
        MaintainReport::default()
    }

    /// Canonical fingerprints of this store's content-addressed
    /// sections, as `(section, fingerprint)` pairs in a fixed order —
    /// e.g. `[("packages", …), ("data", …)]` for Expelliarmus,
    /// `[("files", …)]` for Mirage/Hemera. Snapshot stores with no CAS
    /// return an empty list. The crash-recovery oracle compares these
    /// against a recovered durable backend's fingerprints, and CI
    /// diffs them between the durable and in-memory churn replays.
    fn cas_fingerprints(&self) -> Vec<(String, String)> {
        Vec::new()
    }

    /// Attach an observability registry to this store's hot paths. The
    /// default is a no-op (a store with no instrumented substrate has
    /// nothing to report); CAS-backed stores forward to their
    /// [`ContentStore::attach_obs`](crate::cas::ContentStore::attach_obs)
    /// sections. Attachment is idempotent — first registry wins — and
    /// must never change simulated behaviour: reports and fingerprints
    /// are byte-identical with or without a registry attached.
    fn attach_obs(&self, _reg: &std::sync::Arc<xpl_obs::Registry>) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use xpl_guestfs::FsTree;
    use xpl_pkg::{Arch, DpkgDb};

    #[test]
    fn request_for_image_captures_spec() {
        let mut catalog = Catalog::new();
        let redis = catalog.add(xpl_pkg::catalog::PackageSpec {
            name: "redis".into(),
            version: xpl_pkg::Version::parse("6.0"),
            arch: Arch::Amd64,
            section: xpl_pkg::meta::Section::Databases,
            essential: false,
            deb_size: 10,
            installed_size: 30,
            depends: vec![],
            manifest: Default::default(),
        });
        let mut vmi = Vmi::assemble(
            "img",
            BaseImageAttrs::ubuntu("16.04", Arch::Amd64),
            FsTree::new(),
            DpkgDb::new(),
            vec![redis],
        );
        vmi.fs.add_file(FileRecord {
            path: xpl_util::IStr::new("/home/u/d"),
            size: 5,
            seed: 1,
            owner: xpl_guestfs::FileOwner::UserData,
        });
        let req = RetrieveRequest::for_image(&vmi, &catalog);
        assert_eq!(req.name, "img");
        assert_eq!(req.primary, vec!["redis"]);
        assert_eq!(req.user_data.len(), 1);
        assert_eq!(req.base, vmi.base);
    }
}
