//! Byte-size formatting, including the scale model used throughout the
//! reproduction.
//!
//! The paper's images are ~2 GB each; we materialize content at 1/1024 of
//! nominal size so the complete evaluation runs in seconds. "Nominal" sizes
//! (what we report next to paper numbers) are real byte counts multiplied
//! by [`SCALE_FACTOR`].

/// 1 materialized byte represents this many nominal bytes (2^10).
pub const SCALE_FACTOR: u64 = 1024;

const UNITS: [&str; 6] = ["B", "KiB", "MiB", "GiB", "TiB", "PiB"];

/// Format a raw byte count with binary units, e.g. `3.42 GiB`.
pub fn format_bytes(bytes: u64) -> String {
    if bytes < 1024 {
        return format!("{bytes} B");
    }
    let mut value = bytes as f64;
    let mut unit = 0;
    while value >= 1024.0 && unit + 1 < UNITS.len() {
        value /= 1024.0;
        unit += 1;
    }
    format!("{value:.2} {}", UNITS[unit])
}

/// Format a *materialized* byte count in nominal (paper-scale) units.
pub fn format_nominal(real_bytes: u64) -> String {
    format_bytes(real_bytes.saturating_mul(SCALE_FACTOR))
}

/// Convert materialized bytes to nominal gigabytes (paper axis units).
pub fn nominal_gb(real_bytes: u64) -> f64 {
    (real_bytes.saturating_mul(SCALE_FACTOR)) as f64 / (1u64 << 30) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values() {
        assert_eq!(format_bytes(0), "0 B");
        assert_eq!(format_bytes(512), "512 B");
    }

    #[test]
    fn unit_steps() {
        assert_eq!(format_bytes(1024), "1.00 KiB");
        assert_eq!(format_bytes(1536), "1.50 KiB");
        assert_eq!(format_bytes(1024 * 1024), "1.00 MiB");
        assert_eq!(format_bytes(3 * 1024 * 1024 * 1024), "3.00 GiB");
    }

    #[test]
    fn nominal_scaling() {
        // 1 MiB materialized == 1 GiB nominal.
        assert_eq!(format_nominal(1024 * 1024), "1.00 GiB");
        assert!((nominal_gb(1024 * 1024) - 1.0).abs() < 1e-9);
        assert!((nominal_gb(2 * 1024 * 1024) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn huge_values_do_not_overflow() {
        let s = format_bytes(u64::MAX);
        assert!(s.ends_with("PiB"), "{s}");
    }
}
