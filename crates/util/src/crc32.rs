//! CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320).
//!
//! Required by the gzip framing layer (RFC 1952 stores a CRC-32 of the
//! uncompressed payload). Table-driven, one table generated at first use.

/// Streaming CRC-32 state.
#[derive(Clone)]
pub struct Crc32 {
    value: u32,
}

const POLY: u32 = 0xEDB8_8320;

fn table() -> &'static [u32; 256] {
    use std::sync::OnceLock;
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, e) in t.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 { POLY ^ (c >> 1) } else { c >> 1 };
            }
            *e = c;
        }
        t
    })
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

impl Crc32 {
    pub fn new() -> Self {
        Crc32 { value: 0xFFFF_FFFF }
    }

    /// One-shot CRC of a byte slice.
    pub fn checksum(data: &[u8]) -> u32 {
        let mut c = Crc32::new();
        c.update(data);
        c.finalize()
    }

    pub fn update(&mut self, data: &[u8]) {
        let t = table();
        let mut c = self.value;
        for &b in data {
            c = t[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
        }
        self.value = c;
    }

    pub fn finalize(&self) -> u32 {
        self.value ^ 0xFFFF_FFFF
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // The canonical check value for CRC-32/IEEE.
        assert_eq!(Crc32::checksum(b"123456789"), 0xCBF4_3926);
        assert_eq!(Crc32::checksum(b""), 0);
        assert_eq!(Crc32::checksum(b"a"), 0xE8B7_BE43);
        assert_eq!(Crc32::checksum(b"abc"), 0x3524_41C2);
    }

    #[test]
    fn streaming_matches_oneshot() {
        let data: Vec<u8> = (0..1000u32).map(|x| (x * 31 % 256) as u8).collect();
        let one = Crc32::checksum(&data);
        let mut c = Crc32::new();
        for chunk in data.chunks(7) {
            c.update(chunk);
        }
        assert_eq!(c.finalize(), one);
    }

    #[test]
    fn differs_on_single_bit_flip() {
        let mut data = vec![0u8; 64];
        let base = Crc32::checksum(&data);
        data[17] ^= 0x04;
        assert_ne!(Crc32::checksum(&data), base);
    }
}
