//! CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320).
//!
//! Required by the gzip framing layer (RFC 1952 stores a CRC-32 of the
//! uncompressed payload). Slice-by-8 table-driven: eight derived tables
//! let the hot loop fold one 64-bit word per step instead of one byte,
//! producing the same CRC values as the classic byte-wise form.

/// Streaming CRC-32 state.
#[derive(Clone)]
pub struct Crc32 {
    value: u32,
}

const POLY: u32 = 0xEDB8_8320;

fn tables() -> &'static [[u32; 256]; 8] {
    use std::sync::OnceLock;
    static TABLES: OnceLock<[[u32; 256]; 8]> = OnceLock::new();
    TABLES.get_or_init(|| {
        let mut t = [[0u32; 256]; 8];
        for (i, e) in t[0].iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 { POLY ^ (c >> 1) } else { c >> 1 };
            }
            *e = c;
        }
        // t[k][i] = CRC of byte i followed by k zero bytes.
        for k in 1..8 {
            for i in 0..256usize {
                let prev = t[k - 1][i];
                t[k][i] = t[0][(prev & 0xFF) as usize] ^ (prev >> 8);
            }
        }
        t
    })
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

impl Crc32 {
    pub fn new() -> Self {
        Crc32 { value: 0xFFFF_FFFF }
    }

    /// One-shot CRC of a byte slice.
    pub fn checksum(data: &[u8]) -> u32 {
        let mut c = Crc32::new();
        c.update(data);
        c.finalize()
    }

    pub fn update(&mut self, data: &[u8]) {
        let t = tables();
        let mut c = self.value;
        let mut chunks = data.chunks_exact(8);
        for ch in chunks.by_ref() {
            let lo = u32::from_le_bytes(ch[0..4].try_into().unwrap()) ^ c;
            let hi = u32::from_le_bytes(ch[4..8].try_into().unwrap());
            c = t[7][(lo & 0xFF) as usize]
                ^ t[6][((lo >> 8) & 0xFF) as usize]
                ^ t[5][((lo >> 16) & 0xFF) as usize]
                ^ t[4][(lo >> 24) as usize]
                ^ t[3][(hi & 0xFF) as usize]
                ^ t[2][((hi >> 8) & 0xFF) as usize]
                ^ t[1][((hi >> 16) & 0xFF) as usize]
                ^ t[0][(hi >> 24) as usize];
        }
        for &b in chunks.remainder() {
            c = t[0][((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
        }
        self.value = c;
    }

    pub fn finalize(&self) -> u32 {
        self.value ^ 0xFFFF_FFFF
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // The canonical check value for CRC-32/IEEE.
        assert_eq!(Crc32::checksum(b"123456789"), 0xCBF4_3926);
        assert_eq!(Crc32::checksum(b""), 0);
        assert_eq!(Crc32::checksum(b"a"), 0xE8B7_BE43);
        assert_eq!(Crc32::checksum(b"abc"), 0x3524_41C2);
    }

    #[test]
    fn streaming_matches_oneshot() {
        let data: Vec<u8> = (0..1000u32).map(|x| (x * 31 % 256) as u8).collect();
        let one = Crc32::checksum(&data);
        let mut c = Crc32::new();
        for chunk in data.chunks(7) {
            c.update(chunk);
        }
        assert_eq!(c.finalize(), one);
    }

    #[test]
    fn differs_on_single_bit_flip() {
        let mut data = vec![0u8; 64];
        let base = Crc32::checksum(&data);
        data[17] ^= 0x04;
        assert_ne!(Crc32::checksum(&data), base);
    }
}
