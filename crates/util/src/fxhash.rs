//! Fx-style multiplicative hasher (the rustc/Firefox `FxHash` algorithm).
//!
//! The Rust Performance Book recommends a fast non-cryptographic hasher for
//! hot maps when HashDoS is not a concern; every key hashed here is either
//! an interned-string index, a package id, or a content-digest prefix — all
//! internal, attacker-free values.

use std::hash::{BuildHasherDefault, Hasher};

/// Drop-in `HashMap` with the Fx hasher.
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, BuildHasherDefault<FxHasher>>;
/// Drop-in `HashSet` with the Fx hasher.
pub type FxHashSet<T> = std::collections::HashSet<T, BuildHasherDefault<FxHasher>>;

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The hasher state: a single u64 folded with a rotate + xor + multiply.
#[derive(Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, i: u64) {
        self.hash = (self.hash.rotate_left(5) ^ i).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(c.try_into().unwrap()));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(buf) | ((rem.len() as u64) << 56));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::Hash;

    fn hash_of<T: Hash + ?Sized>(v: &T) -> u64 {
        let mut h = FxHasher::default();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn deterministic() {
        assert_eq!(hash_of(&42u64), hash_of(&42u64));
        assert_eq!(hash_of(&"hello"), hash_of(&"hello"));
    }

    #[test]
    fn distinguishes_values() {
        assert_ne!(hash_of(&1u64), hash_of(&2u64));
        assert_ne!(hash_of(&"ab"), hash_of(&"ba"));
        // Length tagging: a short remainder must not collide with the
        // zero-padded version of itself.
        assert_ne!(hash_of(&[1u8][..]), hash_of(&[1u8, 0][..]));
    }

    #[test]
    fn map_works() {
        let mut m: FxHashMap<String, u32> = FxHashMap::default();
        for i in 0..1000u32 {
            m.insert(format!("key-{i}"), i);
        }
        assert_eq!(m.len(), 1000);
        assert_eq!(m["key-512"], 512);
    }

    #[test]
    fn set_works() {
        let mut s: FxHashSet<u64> = FxHashSet::default();
        for i in 0..100 {
            s.insert(i * i);
        }
        assert!(s.contains(&81));
        assert!(!s.contains(&82));
    }
}
