//! Thread-safe string interner.
//!
//! File paths and package names repeat massively across images (the base OS
//! contributes ~70 k identical paths to every image); interning turns them
//! into 4-byte ids with O(1) equality and hashing.
//!
//! A global interner instance is provided because path identity must be
//! shared across crates; per-test isolation is unnecessary since interning
//! is append-only and content-addressed.

use std::sync::{Mutex, OnceLock, RwLock};

/// An interned string: a dense index into the global interner.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct IStr(pub u32);

impl IStr {
    /// Intern a string in the global interner.
    pub fn new(s: &str) -> IStr {
        global().intern(s)
    }

    /// Resolve to the underlying string (leaked storage, `'static`).
    pub fn as_str(self) -> &'static str {
        global().resolve(self)
    }
}

impl std::fmt::Debug for IStr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "i{:?}", self.as_str())
    }
}

impl std::fmt::Display for IStr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

impl From<&str> for IStr {
    fn from(s: &str) -> Self {
        IStr::new(s)
    }
}

/// The interner itself. Strings are leaked into `'static` storage — the
/// set of distinct paths/names in any run is bounded (a few hundred
/// thousand) and the process is short-lived, so this is the standard,
/// lock-cheap design.
pub struct Interner {
    /// Map from string to index. RwLock: reads (lookups of already-interned
    /// strings) vastly dominate.
    map: RwLock<crate::fxhash::FxHashMap<&'static str, u32>>,
    /// Reverse table. Guarded separately so `resolve` never contends with
    /// `intern`'s map write lock.
    rev: RwLock<Vec<&'static str>>,
    /// Serializes the insert slow path so two racing interns of the same
    /// new string cannot both allocate an id.
    insert: Mutex<()>,
}

impl Default for Interner {
    fn default() -> Self {
        Self::new()
    }
}

impl Interner {
    pub fn new() -> Self {
        Interner {
            map: RwLock::new(crate::fxhash::FxHashMap::default()),
            rev: RwLock::new(Vec::new()),
            insert: Mutex::new(()),
        }
    }

    pub fn intern(&self, s: &str) -> IStr {
        if let Some(&id) = self.map.read().unwrap().get(s) {
            return IStr(id);
        }
        let _g = self.insert.lock().unwrap();
        // Re-check under the insert lock.
        if let Some(&id) = self.map.read().unwrap().get(s) {
            return IStr(id);
        }
        let leaked: &'static str = Box::leak(s.to_owned().into_boxed_str());
        let mut rev = self.rev.write().unwrap();
        let id = rev.len() as u32;
        rev.push(leaked);
        drop(rev);
        self.map.write().unwrap().insert(leaked, id);
        IStr(id)
    }

    pub fn resolve(&self, i: IStr) -> &'static str {
        self.rev.read().unwrap()[i.0 as usize]
    }

    pub fn len(&self) -> usize {
        self.rev.read().unwrap().len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

fn global() -> &'static Interner {
    static GLOBAL: OnceLock<Interner> = OnceLock::new();
    GLOBAL.get_or_init(Interner::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_string_same_id() {
        let a = IStr::new("hello/world");
        let b = IStr::new("hello/world");
        assert_eq!(a, b);
        assert_eq!(a.as_str(), "hello/world");
    }

    #[test]
    fn different_strings_different_ids() {
        assert_ne!(IStr::new("intern-a"), IStr::new("intern-b"));
    }

    #[test]
    fn concurrent_interning_is_consistent() {
        use std::thread;
        let names: Vec<String> = (0..64).map(|i| format!("conc-{}", i % 8)).collect();
        let mut handles = vec![];
        for chunk in names.chunks(8) {
            let chunk = chunk.to_vec();
            handles.push(thread::spawn(move || {
                chunk.iter().map(|s| IStr::new(s)).collect::<Vec<_>>()
            }));
        }
        let results: Vec<Vec<IStr>> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        // Every thread interned the same 8 distinct strings; ids must agree.
        for r in &results[1..] {
            assert_eq!(r, &results[0]);
        }
    }

    #[test]
    fn local_interner_independent() {
        let local = Interner::new();
        let a = local.intern("x");
        let b = local.intern("y");
        assert_eq!(a, IStr(0));
        assert_eq!(b, IStr(1));
        assert_eq!(local.resolve(a), "x");
        assert_eq!(local.len(), 2);
    }
}
