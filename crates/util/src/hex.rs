//! Minimal hex encoding/decoding for digests and debugging output.

const ALPHABET: &[u8; 16] = b"0123456789abcdef";

/// Encode bytes as lowercase hex.
pub fn encode(data: &[u8]) -> String {
    let mut out = String::with_capacity(data.len() * 2);
    for &b in data {
        out.push(ALPHABET[(b >> 4) as usize] as char);
        out.push(ALPHABET[(b & 0xF) as usize] as char);
    }
    out
}

/// Decode a hex string (upper- or lowercase). Returns `None` on odd length
/// or non-hex characters.
pub fn decode(s: &str) -> Option<Vec<u8>> {
    if !s.len().is_multiple_of(2) {
        return None;
    }
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(s.len() / 2);
    for pair in bytes.chunks_exact(2) {
        let hi = (pair[0] as char).to_digit(16)?;
        let lo = (pair[1] as char).to_digit(16)?;
        out.push(((hi << 4) | lo) as u8);
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let data: Vec<u8> = (0..=255).collect();
        assert_eq!(decode(&encode(&data)).unwrap(), data);
    }

    #[test]
    fn encode_known() {
        assert_eq!(encode(&[0x00, 0xFF, 0x1a]), "00ff1a");
        assert_eq!(encode(&[]), "");
    }

    #[test]
    fn decode_rejects_bad_input() {
        assert!(decode("abc").is_none(), "odd length");
        assert!(decode("zz").is_none(), "non-hex");
        assert_eq!(decode("AbCd").unwrap(), vec![0xAB, 0xCD], "mixed case ok");
    }
}
