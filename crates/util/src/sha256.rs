//! SHA-256 (FIPS 180-4), implemented from scratch.
//!
//! Used for content addressing throughout the repository stores. The
//! implementation is a straightforward streaming compressor over 64-byte
//! blocks; throughput is not the bottleneck of any experiment (materialized
//! content is small under the scale model), but it is still written in the
//! usual unrolled-free, allocation-free style.

/// A 256-bit content digest.
///
/// `Digest` is the universal content identity in this workspace: two blobs
/// are "the same content" for deduplication purposes iff their digests are
/// equal.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Digest(pub [u8; 32]);

impl Digest {
    /// Digest of the empty byte string (a common sentinel).
    pub fn empty() -> Self {
        Sha256::digest(&[])
    }

    /// Lowercase hex rendering of the full digest.
    pub fn to_hex(&self) -> String {
        crate::hex::encode(&self.0)
    }

    /// Short (8-hex-char) prefix for logs and debugging output.
    pub fn short(&self) -> String {
        crate::hex::encode(&self.0[..4])
    }

    /// First 8 bytes as a little-endian u64 — handy as a pre-computed
    /// bucket key for in-memory indexes.
    pub fn prefix64(&self) -> u64 {
        u64::from_le_bytes(self.0[..8].try_into().unwrap())
    }
}

impl std::fmt::Debug for Digest {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Digest({})", self.short())
    }
}

impl std::fmt::Display for Digest {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.to_hex())
    }
}

const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

const H0: [u32; 8] = [
    0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19,
];

/// Streaming SHA-256 state.
#[derive(Clone)]
pub struct Sha256 {
    state: [u32; 8],
    /// Partially filled block.
    buf: [u8; 64],
    buf_len: usize,
    /// Total message length in bytes.
    total: u64,
}

impl Default for Sha256 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha256 {
    pub fn new() -> Self {
        Sha256 {
            state: H0,
            buf: [0u8; 64],
            buf_len: 0,
            total: 0,
        }
    }

    /// One-shot convenience digest.
    pub fn digest(data: &[u8]) -> Digest {
        let mut h = Sha256::new();
        h.update(data);
        h.finalize()
    }

    /// Digest of several concatenated fragments without materializing the
    /// concatenation.
    pub fn digest_parts(parts: &[&[u8]]) -> Digest {
        let mut h = Sha256::new();
        for p in parts {
            h.update(p);
        }
        h.finalize()
    }

    pub fn update(&mut self, mut data: &[u8]) {
        self.total = self.total.wrapping_add(data.len() as u64);
        // Top up a partial block first.
        if self.buf_len > 0 {
            let want = 64 - self.buf_len;
            let take = want.min(data.len());
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&data[..take]);
            self.buf_len += take;
            data = &data[take..];
            if self.buf_len == 64 {
                Self::compress(&mut self.state, &self.buf);
                self.buf_len = 0;
            } else {
                // Block still partial: nothing else to consume.
                return;
            }
        }
        // Full blocks compressed straight from the input slice — no pass
        // through `buf`.
        let mut chunks = data.chunks_exact(64);
        for block in &mut chunks {
            Self::compress(&mut self.state, block.try_into().unwrap());
        }
        let rem = chunks.remainder();
        self.buf[..rem.len()].copy_from_slice(rem);
        self.buf_len = rem.len();
    }

    pub fn finalize(mut self) -> Digest {
        let bit_len = self.total.wrapping_mul(8);
        // Append 0x80 then zero padding to 56 mod 64, then the bit length.
        self.buf[self.buf_len] = 0x80;
        let mut i = self.buf_len + 1;
        if i > 56 {
            self.buf[i..].fill(0);
            Self::compress(&mut self.state, &self.buf);
            i = 0;
        }
        self.buf[i..56].fill(0);
        self.buf[56..64].copy_from_slice(&bit_len.to_be_bytes());
        Self::compress(&mut self.state, &self.buf);

        let mut out = [0u8; 32];
        for (i, w) in self.state.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&w.to_be_bytes());
        }
        Digest(out)
    }

    /// One FIPS 180-4 compression round over a 64-byte block. Takes the
    /// state and block as separate borrows so callers can pass disjoint
    /// fields of `self` without copying the block.
    fn compress(state: &mut [u32; 8], block: &[u8; 64]) {
        let mut w = [0u32; 64];
        for (i, c) in block.chunks_exact(4).enumerate() {
            w[i] = u32::from_be_bytes(c.try_into().unwrap());
        }
        for i in 16..64 {
            let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
            let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
            w[i] = w[i - 16]
                .wrapping_add(s0)
                .wrapping_add(w[i - 7])
                .wrapping_add(s1);
        }

        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = *state;
        for i in 0..64 {
            let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
            let ch = (e & f) ^ (!e & g);
            let t1 = h
                .wrapping_add(s1)
                .wrapping_add(ch)
                .wrapping_add(K[i])
                .wrapping_add(w[i]);
            let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
            let maj = (a & b) ^ (a & c) ^ (b & c);
            let t2 = s0.wrapping_add(maj);
            h = g;
            g = f;
            f = e;
            e = d.wrapping_add(t1);
            d = c;
            c = b;
            b = a;
            a = t1.wrapping_add(t2);
        }
        state[0] = state[0].wrapping_add(a);
        state[1] = state[1].wrapping_add(b);
        state[2] = state[2].wrapping_add(c);
        state[3] = state[3].wrapping_add(d);
        state[4] = state[4].wrapping_add(e);
        state[5] = state[5].wrapping_add(f);
        state[6] = state[6].wrapping_add(g);
        state[7] = state[7].wrapping_add(h);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // NIST / well-known vectors.
    #[test]
    fn empty_vector() {
        assert_eq!(
            Sha256::digest(b"").to_hex(),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
    }

    #[test]
    fn abc_vector() {
        assert_eq!(
            Sha256::digest(b"abc").to_hex(),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
    }

    #[test]
    fn two_block_vector() {
        assert_eq!(
            Sha256::digest(b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq").to_hex(),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
    }

    #[test]
    fn million_a_vector() {
        let data = vec![b'a'; 1_000_000];
        assert_eq!(
            Sha256::digest(&data).to_hex(),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        );
    }

    #[test]
    fn streaming_matches_oneshot_all_split_points() {
        let data: Vec<u8> = (0..257u16).map(|x| (x % 251) as u8).collect();
        let expect = Sha256::digest(&data);
        for split in 0..data.len() {
            let mut h = Sha256::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            assert_eq!(h.finalize(), expect, "split at {split}");
        }
    }

    #[test]
    fn digest_parts_matches_concat() {
        let a = b"hello ".as_slice();
        let b = b"world".as_slice();
        assert_eq!(
            Sha256::digest_parts(&[a, b]),
            Sha256::digest(b"hello world")
        );
    }

    #[test]
    fn padding_boundary_lengths() {
        // Lengths around the 55/56/64 padding edge cases must all be
        // internally consistent between streaming and one-shot paths.
        for len in [
            0usize, 1, 54, 55, 56, 57, 63, 64, 65, 119, 120, 127, 128, 129,
        ] {
            let data = vec![0xabu8; len];
            let one = Sha256::digest(&data);
            let mut h = Sha256::new();
            for b in &data {
                h.update(std::slice::from_ref(b));
            }
            assert_eq!(h.finalize(), one, "len {len}");
        }
    }

    #[test]
    fn display_and_short() {
        let d = Sha256::digest(b"abc");
        assert_eq!(format!("{d}"), d.to_hex());
        assert_eq!(d.short().len(), 8);
        assert!(d.to_hex().starts_with(&d.short()));
    }

    #[test]
    fn prefix64_is_stable() {
        let d = Sha256::digest(b"abc");
        assert_eq!(
            d.prefix64(),
            u64::from_le_bytes(d.0[..8].try_into().unwrap())
        );
    }
}
