//! SplitMix64 — a tiny, fast, deterministic PRNG (Steele et al., "Fast
//! splittable pseudorandom number generators").
//!
//! Synthetic file content must be *stable across builds and dependency
//! versions* because content identity drives every deduplication result in
//! the evaluation; we therefore avoid `rand`'s unspecified stream stability
//! and keep this 20-line generator under our own control.

/// Deterministic 64-bit generator. Cloning forks the stream state.
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Derive a child generator from a label — used to key file content by
    /// (package, version, path) without correlation between siblings.
    pub fn derive(&self, label: &str) -> SplitMix64 {
        let mut h = self.state ^ 0x9E37_79B9_7F4A_7C15;
        for &b in label.as_bytes() {
            h = (h ^ b as u64).wrapping_mul(0x100_0000_01B3);
        }
        SplitMix64::new(h)
    }

    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform in `[0, bound)`. `bound` must be non-zero.
    #[inline]
    pub fn next_below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Multiply-shift reduction; bias is negligible for our uses.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform in `[lo, hi]` inclusive.
    #[inline]
    pub fn next_range(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(lo <= hi);
        lo + self.next_below(hi - lo + 1)
    }

    /// Uniform float in `[0, 1)`.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli trial with probability `p`.
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Fill a buffer with pseudorandom bytes.
    pub fn fill_bytes(&mut self, buf: &mut [u8]) {
        let mut chunks = buf.chunks_exact_mut(8);
        for c in &mut chunks {
            c.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let w = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&w[..rem.len()]);
        }
    }

    /// Pick a random element of a slice.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.next_below(items.len() as u64) as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_stream() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn known_first_outputs() {
        // Reference outputs for seed 0 from the canonical SplitMix64.
        let mut r = SplitMix64::new(0);
        assert_eq!(r.next_u64(), 0xE220A8397B1DCDAF);
        assert_eq!(r.next_u64(), 0x6E789E6AA1B965F4);
        assert_eq!(r.next_u64(), 0x06C45D188009454F);
    }

    #[test]
    fn derive_is_stable_and_distinct() {
        let root = SplitMix64::new(7);
        let mut a1 = root.derive("alpha");
        let mut a2 = root.derive("alpha");
        let mut b = root.derive("beta");
        let x = a1.next_u64();
        assert_eq!(x, a2.next_u64());
        assert_ne!(x, b.next_u64());
    }

    #[test]
    fn next_below_in_range() {
        let mut r = SplitMix64::new(1);
        for _ in 0..10_000 {
            let v = r.next_below(17);
            assert!(v < 17);
        }
    }

    #[test]
    fn next_range_inclusive() {
        let mut r = SplitMix64::new(2);
        let mut saw_lo = false;
        let mut saw_hi = false;
        for _ in 0..10_000 {
            let v = r.next_range(3, 5);
            assert!((3..=5).contains(&v));
            saw_lo |= v == 3;
            saw_hi |= v == 5;
        }
        assert!(saw_lo && saw_hi);
    }

    #[test]
    fn f64_unit_interval() {
        let mut r = SplitMix64::new(3);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let v = r.next_f64();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} too far from 0.5");
    }

    #[test]
    fn fill_bytes_varies() {
        let mut r = SplitMix64::new(4);
        let mut a = [0u8; 33];
        let mut b = [0u8; 33];
        r.fill_bytes(&mut a);
        r.fill_bytes(&mut b);
        assert_ne!(a, b);
    }
}
