//! `xpl-util` — foundational utilities shared by every Expelliarmus crate.
//!
//! Contents:
//! * [`sha256`] — a from-scratch SHA-256 implementation (FIPS 180-4) used
//!   for content addressing in the deduplicating stores.
//! * [`crc32`] — CRC-32 (IEEE, reflected) used by the gzip framing layer.
//! * [`fxhash`] — a Firefox/rustc-style multiplicative hasher for hot
//!   in-memory maps where HashDoS resistance is irrelevant.
//! * [`rng`] — SplitMix64, a tiny deterministic PRNG used to synthesize
//!   stable file content (stability across `rand` versions matters because
//!   content identity drives deduplication results).
//! * [`intern`] — a thread-safe string interner for file paths and package
//!   names (millions of path components are shared across images).
//! * [`bytesize`] — human-readable size formatting in both real and
//!   nominal (scale-model) units.

pub mod bytesize;
pub mod crc32;
pub mod fxhash;
pub mod hex;
pub mod intern;
pub mod rng;
pub mod sha256;

pub use bytesize::{format_bytes, format_nominal, SCALE_FACTOR};
pub use crc32::Crc32;
pub use fxhash::{FxHashMap, FxHashSet, FxHasher};
pub use intern::{IStr, Interner};
pub use rng::SplitMix64;
pub use sha256::{Digest, Sha256};
