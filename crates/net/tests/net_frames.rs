//! Frame-codec property tests: round-trips at size boundaries, an
//! every-byte truncation sweep, and an every-byte corruption sweep over
//! header, payload, and trailer — typed errors always, panics never,
//! and a forged length field is refused before any allocation.

use proptest::prelude::*;
use xpl_net::frame::{decode, encode, read_frame, write_frame, FrameKind};
use xpl_net::{mem_pair, NetError, Transport, DEFAULT_MAX_FRAME, HEADER_LEN, TRAILER_LEN};
use xpl_util::{Crc32, SplitMix64};

fn junk(seed: u64, n: usize) -> Vec<u8> {
    let mut rng = SplitMix64::new(seed);
    let mut out = Vec::with_capacity(n);
    while out.len() < n {
        out.extend_from_slice(&rng.next_u64().to_le_bytes());
    }
    out.truncate(n);
    out
}

// ------------------------------------------------------ boundary shapes

#[test]
fn boundary_sizes_roundtrip() {
    let max = 4096u32;
    for n in [0usize, 1, 2, 255, 256, 257, 4095, 4096] {
        let payload = junk(n as u64 + 1, n);
        for kind in [FrameKind::Hello, FrameKind::Request, FrameKind::Response] {
            let bytes = encode(kind, &payload);
            assert_eq!(bytes.len(), HEADER_LEN + n + TRAILER_LEN);
            let (frame, used) = decode(&bytes, max).expect("boundary roundtrip");
            assert_eq!(used, bytes.len());
            assert_eq!(frame.kind, kind);
            assert_eq!(frame.payload, payload);
        }
    }
}

#[test]
fn one_past_max_is_rejected_before_allocation() {
    let bytes = encode(FrameKind::Request, &junk(7, 4097));
    assert_eq!(
        decode(&bytes, 4096),
        Err(NetError::FrameTooLarge {
            len: 4097,
            max: 4096
        })
    );
}

#[test]
fn exact_default_max_roundtrips() {
    let payload = junk(9, DEFAULT_MAX_FRAME as usize);
    let bytes = encode(FrameKind::Response, &payload);
    let (frame, _) = decode(&bytes, DEFAULT_MAX_FRAME).expect("1 MiB payload");
    assert_eq!(frame.payload, payload);
}

// ----------------------------------------------- exhaustive byte sweeps

#[test]
fn truncation_at_every_byte_is_typed() {
    let bytes = encode(FrameKind::Request, &junk(3, 64));
    for cut in 0..bytes.len() {
        match decode(&bytes[..cut], DEFAULT_MAX_FRAME) {
            Err(NetError::Truncated { needed, have }) => {
                assert_eq!(have, cut);
                assert!(needed > cut, "cut {cut}: needed {needed}");
            }
            other => panic!("cut at {cut}: {other:?}"),
        }
    }
}

#[test]
fn truncation_at_every_byte_over_the_wire_is_typed() {
    // Same sweep through a real transport: the peer sends a prefix then
    // vanishes. A zero-byte prefix is a clean close (Ok(None)); any
    // other prefix is a typed mid-frame truncation.
    let bytes = encode(FrameKind::Request, &junk(5, 48));
    for cut in 0..bytes.len() {
        let (mut a, mut b) = mem_pair();
        if cut > 0 {
            a.send(&bytes[..cut]).unwrap();
        }
        a.shutdown();
        match read_frame(&mut b, DEFAULT_MAX_FRAME) {
            Ok(None) if cut == 0 => {}
            Err(NetError::Truncated { .. }) if cut > 0 => {}
            other => panic!("cut at {cut}: {other:?}"),
        }
    }
}

#[test]
fn corruption_at_every_header_byte_is_typed() {
    let bytes = encode(FrameKind::Request, &junk(11, 64));
    for i in 0..HEADER_LEN {
        for bit in [0x01u8, 0x80] {
            let mut bad = bytes.clone();
            bad[i] ^= bit;
            match decode(&bad, DEFAULT_MAX_FRAME) {
                Err(
                    NetError::BadMagic(_)
                    | NetError::BadHeaderCrc { .. }
                    | NetError::BadKind(_)
                    | NetError::FrameTooLarge { .. },
                ) => {}
                other => panic!("header flip at byte {i} bit {bit:#x}: {other:?}"),
            }
        }
    }
}

#[test]
fn corruption_at_every_payload_and_trailer_byte_is_typed() {
    let bytes = encode(FrameKind::Request, &junk(13, 64));
    for i in HEADER_LEN..bytes.len() {
        for bit in [0x01u8, 0x80] {
            let mut bad = bytes.clone();
            bad[i] ^= bit;
            match decode(&bad, DEFAULT_MAX_FRAME) {
                Err(NetError::BadPayloadCrc { .. }) => {}
                other => panic!("payload flip at byte {i} bit {bit:#x}: {other:?}"),
            }
        }
    }
}

#[test]
fn forged_gigabyte_length_over_the_wire_is_typed() {
    // A hostile peer sends a header claiming 3 GiB with a *valid*
    // header CRC. The reader must refuse it typed (no allocation, no
    // hang waiting for gigabytes that will never come).
    let mut bytes = encode(FrameKind::Request, b"innocent");
    bytes[5..9].copy_from_slice(&(3u32 << 30).to_le_bytes());
    let hcrc = Crc32::checksum(&bytes[..9]);
    bytes[9..13].copy_from_slice(&hcrc.to_le_bytes());
    let (mut a, mut b) = mem_pair();
    a.send(&bytes).unwrap();
    assert_eq!(
        read_frame(&mut b, DEFAULT_MAX_FRAME),
        Err(NetError::FrameTooLarge {
            len: 3 << 30,
            max: DEFAULT_MAX_FRAME
        })
    );
}

// ---------------------------------------------------- random properties

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn random_payloads_roundtrip(seed in any::<u64>(), len in 0usize..40_000) {
        let payload = junk(seed, len);
        let bytes = encode(FrameKind::Request, &payload);
        let (frame, used) = decode(&bytes, DEFAULT_MAX_FRAME).expect("roundtrip");
        prop_assert_eq!(used, bytes.len());
        prop_assert_eq!(frame.payload, payload);
    }

    #[test]
    fn any_single_bit_flip_is_a_typed_error(
        seed in any::<u64>(),
        len in 1usize..2_000,
        pos in any::<u64>(),
        bit in 0u32..8,
    ) {
        // CRC-32 catches every single-bit error, so a flip anywhere in
        // the frame must decode to a typed error — never a panic, and
        // never a silently different payload.
        let payload = junk(seed, len);
        let mut bytes = encode(FrameKind::Request, &payload);
        let pos = (pos % bytes.len() as u64) as usize;
        bytes[pos] ^= 1u8 << bit;
        prop_assert!(decode(&bytes, DEFAULT_MAX_FRAME).is_err(), "flip at {} survived", pos);
    }

    #[test]
    fn streams_of_frames_roundtrip_over_a_pipe(seed in any::<u64>(), count in 1usize..12) {
        let (mut a, mut b) = mem_pair();
        let frames: Vec<Vec<u8>> = (0..count).map(|i| junk(seed ^ i as u64, (i * 97) % 1500)).collect();
        for payload in &frames {
            write_frame(&mut a, FrameKind::Request, payload).unwrap();
        }
        a.shutdown();
        for payload in &frames {
            let f = read_frame(&mut b, DEFAULT_MAX_FRAME).unwrap().expect("frame");
            prop_assert_eq!(&f.payload, payload);
        }
        prop_assert!(read_frame(&mut b, DEFAULT_MAX_FRAME).unwrap().is_none());
    }
}
