//! Robustness integration tests: vanished clients, slow-client
//! eviction, hostile frames over real sockets, typed overload with
//! retry convergence, graceful drain fail-fast, bounded backoff, and a
//! deterministic fault storm that must converge with nothing lost.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};
use xpl_net::frame::{
    decode_response, encode_request, read_frame, write_frame, FrameKind, STATUS_OK, STATUS_OVERLOAD,
};
use xpl_net::{
    BackoffPolicy, FaultConfig, MemHost, NetClient, NetError, NetServer, TcpTransport, Transport,
    WireConfig, WireService, DEFAULT_MAX_FRAME,
};

/// An idempotent echo service: deterministic body per request, so every
/// retry converges on the same answer and the oracle can check nothing
/// was silently lost or corrupted.
fn echo_service() -> Arc<dyn WireService> {
    Arc::new(|tenant: u32, req: &[u8]| -> Result<Vec<u8>, String> {
        let mut out = format!("t{tenant}:").into_bytes();
        out.extend_from_slice(req);
        out.reverse();
        Ok(out)
    })
}

fn expected_echo(tenant: u32, req: &[u8]) -> Vec<u8> {
    let mut out = format!("t{tenant}:").into_bytes();
    out.extend_from_slice(req);
    out.reverse();
    out
}

fn hello(t: &mut dyn Transport, tenant: u32) {
    write_frame(t, FrameKind::Hello, &tenant.to_le_bytes()).unwrap();
}

// ------------------------------------------------- vanished clients (TCP)

#[test]
fn kill_client_mid_response_is_typed_peer_closed_not_a_panic() {
    // The satellite-1 pin: a client that sends a request and dies
    // before reading the response. The service's reply is large enough
    // to overrun the socket buffers, so the server's write hits the
    // dead peer (EPIPE/ECONNRESET) — which must surface as a counted
    // `peer_closed`, never a SIGPIPE death or a panic.
    let big = Arc::new(vec![0x5au8; 512 * 1024]);
    let svc: Arc<dyn WireService> = {
        let big = big.clone();
        Arc::new(move |_t: u32, _req: &[u8]| -> Result<Vec<u8>, String> {
            // Give the client time to be fully gone before we write.
            std::thread::sleep(Duration::from_millis(100));
            Ok(big.as_ref().clone())
        })
    };
    let server = NetServer::bind("127.0.0.1:0", svc, WireConfig::default()).unwrap();
    let addr = server.local_addr();

    {
        let mut t = TcpTransport::connect(&addr).unwrap();
        hello(&mut t, 0);
        write_frame(&mut t, FrameKind::Request, &encode_request(0, b"then-die")).unwrap();
        t.shutdown();
    } // dropped: the peer is gone before the response is written

    // Wait for the connection thread to hit the dead socket.
    let deadline = Instant::now() + Duration::from_secs(5);
    while server.stats().peer_closed == 0 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(10));
    }
    let stats = server.drain();
    assert_eq!(stats.peer_closed, 1, "{stats:?}");
    assert_eq!(
        stats.served, 1,
        "service ran before the write failed: {stats:?}"
    );
}

#[test]
fn slow_client_is_evicted_on_read_deadline() {
    let cfg = WireConfig {
        read_deadline: Duration::from_millis(60),
        ..WireConfig::default()
    };
    let server = NetServer::bind("127.0.0.1:0", echo_service(), cfg).unwrap();
    let addr = server.local_addr();

    let mut t = TcpTransport::connect(&addr).unwrap();
    hello(&mut t, 0);
    // Stall mid-frame: a few header bytes, then silence past the
    // deadline. The server must evict (typed, counted), not wait.
    t.send(b"XPLN\x02").unwrap();
    let deadline = Instant::now() + Duration::from_secs(5);
    while server.stats().evictions == 0 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(10));
    }
    let stats = server.drain();
    assert_eq!(stats.evictions, 1, "{stats:?}");
    assert_eq!(stats.served, 0);
}

#[test]
fn hostile_header_over_tcp_is_a_typed_frame_error() {
    let server = NetServer::bind("127.0.0.1:0", echo_service(), WireConfig::default()).unwrap();
    let addr = server.local_addr();

    let mut t = TcpTransport::connect(&addr).unwrap();
    hello(&mut t, 0);
    // A forged header claiming 3 GiB with a valid header CRC.
    let mut bytes = xpl_net::frame::encode(FrameKind::Request, b"x");
    bytes[5..9].copy_from_slice(&(3u32 << 30).to_le_bytes());
    let hcrc = xpl_util::Crc32::checksum(&bytes[..9]);
    bytes[9..13].copy_from_slice(&hcrc.to_le_bytes());
    t.send(&bytes).unwrap();

    let deadline = Instant::now() + Duration::from_secs(5);
    while server.stats().frame_errors == 0 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(10));
    }
    let stats = server.drain();
    assert_eq!(stats.frame_errors, 1, "{stats:?}");
    // The server closed the link; our next read sees EOF or reset.
    let mut buf = [0u8; 16];
    loop {
        match t.recv(&mut buf) {
            Ok(0) | Err(_) => break,
            Ok(_) => continue,
        }
    }
}

// --------------------------------------------------- overload and retry

#[test]
fn overload_is_a_typed_wire_response_not_a_dropped_connection() {
    // queue_depth 1, a service that parks until released: the second
    // concurrent request for the tenant must get STATUS_OVERLOAD on a
    // healthy connection.
    let gate_open = Arc::new((Mutex::new(false), std::sync::Condvar::new()));
    let svc: Arc<dyn WireService> = {
        let gate_open = gate_open.clone();
        Arc::new(move |_t: u32, req: &[u8]| -> Result<Vec<u8>, String> {
            if req == b"park" {
                let (lock, cond) = &*gate_open;
                let mut open = lock.lock().unwrap();
                while !*open {
                    open = cond.wait(open).unwrap();
                }
            }
            Ok(req.to_vec())
        })
    };
    let cfg = WireConfig {
        queue_depth: 1,
        ..WireConfig::default()
    };
    let host = Arc::new(MemHost::new(svc, cfg, FaultConfig::none(0)));

    // Connection A parks inside the service, holding the tenant's slot.
    let mut a = host.connect();
    hello(&mut *a, 7);
    write_frame(&mut *a, FrameKind::Request, &encode_request(0, b"park")).unwrap();
    let deadline = Instant::now() + Duration::from_secs(5);
    while host.gate_in_flight(7) == 0 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(5));
    }
    assert_eq!(host.gate_in_flight(7), 1, "parked request never admitted");

    // Connection B, same tenant: typed overload, connection stays up.
    let mut b = host.connect();
    hello(&mut *b, 7);
    write_frame(&mut *b, FrameKind::Request, &encode_request(0, b"quick")).unwrap();
    let f = read_frame(&mut *b, DEFAULT_MAX_FRAME)
        .unwrap()
        .expect("response, not a hangup");
    let (_, status, _) = decode_response(&f.payload).unwrap();
    assert_eq!(status, STATUS_OVERLOAD);

    // Release A; B's retry on the SAME connection now succeeds.
    {
        let (lock, cond) = &*gate_open;
        *lock.lock().unwrap() = true;
        cond.notify_all();
    }
    let fa = read_frame(&mut *a, DEFAULT_MAX_FRAME)
        .unwrap()
        .expect("parked response");
    let (_, status, body) = decode_response(&fa.payload).unwrap();
    assert_eq!((status, body), (STATUS_OK, &b"park"[..]));

    let deadline = Instant::now() + Duration::from_secs(5);
    let mut retried = None;
    while Instant::now() < deadline {
        write_frame(&mut *b, FrameKind::Request, &encode_request(1, b"quick")).unwrap();
        let f = read_frame(&mut *b, DEFAULT_MAX_FRAME)
            .unwrap()
            .expect("retry response");
        let (_, status, body) = decode_response(&f.payload).unwrap();
        if status == STATUS_OK {
            retried = Some(body.to_vec());
            break;
        }
        assert_eq!(status, STATUS_OVERLOAD);
        std::thread::sleep(Duration::from_millis(5));
    }
    assert_eq!(retried.as_deref(), Some(&b"quick"[..]));
    drop((a, b));
    let stats = host.drain();
    assert!(stats.overloads >= 1, "{stats:?}");
    assert!(stats.served >= 2, "{stats:?}");
}

#[test]
fn client_retries_overload_with_backoff_until_capacity_frees() {
    // One tenant, queue_depth 1, a slow request hogging the slot: a
    // NetClient issuing a second request must see typed overloads and
    // converge once the slot frees — without ever reconnecting.
    let svc: Arc<dyn WireService> = Arc::new(|_t: u32, req: &[u8]| -> Result<Vec<u8>, String> {
        if req == b"slow" {
            std::thread::sleep(Duration::from_millis(250));
        }
        Ok(req.to_vec())
    });
    let cfg = WireConfig {
        queue_depth: 1,
        ..WireConfig::default()
    };
    let host = Arc::new(MemHost::new(svc, cfg, FaultConfig::none(0)));

    let slow_host = host.clone();
    let slow = std::thread::spawn(move || {
        let mut t = slow_host.connect();
        hello(&mut *t, 3);
        write_frame(&mut *t, FrameKind::Request, &encode_request(0, b"slow")).unwrap();
        let f = read_frame(&mut *t, DEFAULT_MAX_FRAME).unwrap().unwrap();
        let (_, status, _) = decode_response(&f.payload).unwrap();
        assert_eq!(status, STATUS_OK);
    });
    // Let the slow request claim the slot first.
    std::thread::sleep(Duration::from_millis(50));

    let conn_host = host.clone();
    let backoff = BackoffPolicy {
        base_ns: 2_000_000,
        max_ns: 50_000_000,
        max_attempts: 24,
    };
    let mut client = NetClient::new(
        3,
        cfg,
        backoff,
        11,
        Box::new(move || Ok(conn_host.connect())),
    );
    let reply = client.call(b"quick").expect("converges after overloads");
    assert_eq!(reply, b"quick");
    assert!(client.stats.overloads_seen >= 1, "{:?}", client.stats);
    assert_eq!(
        client.stats.reconnects, 0,
        "overload must not tear the connection"
    );
    assert!(client.stats.retries >= client.stats.overloads_seen);
    slow.join().unwrap();
    client.close();
    host.drain();
}

#[test]
fn retry_budget_is_bounded_and_delays_are_monotone() {
    // A connector that never succeeds: the client must give up after
    // exactly max_attempts with a typed Exhausted — not hang, not spin.
    let dials = Arc::new(AtomicU64::new(0));
    let d = dials.clone();
    let backoff = BackoffPolicy {
        base_ns: 50_000,
        max_ns: 400_000,
        max_attempts: 5,
    };
    let mut client = NetClient::new(
        0,
        WireConfig::default(),
        backoff,
        42,
        Box::new(move || {
            d.fetch_add(1, Ordering::Relaxed);
            Err(NetError::Reset)
        }),
    );
    let err = client.call(b"unreachable").unwrap_err();
    assert_eq!(err, NetError::Exhausted { attempts: 5 });
    assert_eq!(dials.load(Ordering::Relaxed), 5);
    assert_eq!(client.stats.retries, 4);

    // The schedule itself: deterministic, within jitter bounds, and
    // monotone non-decreasing below the cap.
    let sched = backoff.schedule(42);
    assert_eq!(sched, backoff.schedule(42));
    for (n, &delay) in sched.iter().enumerate() {
        let floor = backoff.floor_ns(n as u32);
        assert!(
            delay >= floor && delay <= floor + floor / 2,
            "attempt {n}: {delay}"
        );
    }
    assert!(sched.windows(2).all(|w| w[0] <= w[1]), "{sched:?}");
}

// ------------------------------------------------------- graceful drain

#[test]
fn drained_server_fails_clients_fast_with_rejected_not_a_hang() {
    let host = Arc::new(MemHost::new(
        echo_service(),
        WireConfig::default(),
        FaultConfig::none(0),
    ));

    // A request served before the drain goes through normally.
    let pre_host = host.clone();
    let mut client = NetClient::new(
        1,
        WireConfig::default(),
        BackoffPolicy::default(),
        5,
        Box::new(move || Ok(pre_host.connect())),
    );
    assert_eq!(client.call(b"before").unwrap(), expected_echo(1, b"before"));

    host.begin_drain();

    // After the drain flag: fail fast with typed Rejected — bounded
    // time, no retry storm against a server that told us to go away.
    let start = Instant::now();
    let err = client.call(b"after").unwrap_err();
    assert!(matches!(err, NetError::Rejected(_)), "{err:?}");
    assert!(
        start.elapsed() < Duration::from_secs(2),
        "fail-fast took {:?}",
        start.elapsed()
    );
    assert_eq!(client.stats.rejected, 1);
    assert_eq!(client.stats.retries, 0, "Draining must not be retried");

    client.close();
    let stats = host.drain();
    assert_eq!(stats.drain_rejects, 1, "{stats:?}");
    assert_eq!(stats.served, 1, "{stats:?}");
}

#[test]
fn tcp_drain_finishes_in_flight_and_stops_accepting() {
    let server = NetServer::bind("127.0.0.1:0", echo_service(), WireConfig::default()).unwrap();
    let addr = server.local_addr();

    let mut client = NetClient::tcp(addr, 2, WireConfig::default(), BackoffPolicy::default(), 9);
    assert_eq!(
        client.call(b"in-flight").unwrap(),
        expected_echo(2, b"in-flight")
    );
    client.close();

    let stats = server.drain();
    assert_eq!(stats.served, 1, "{stats:?}");
    // The listener is gone: a fresh dial must not reach a server.
    // (The wake-up connection during drain may linger in the backlog,
    // so assert on the served count staying put rather than connect
    // failing on every OS.)
    let mut late = NetClient::tcp(
        addr,
        2,
        WireConfig {
            read_deadline: Duration::from_millis(100),
            ..WireConfig::default()
        },
        BackoffPolicy {
            base_ns: 1_000_000,
            max_ns: 2_000_000,
            max_attempts: 3,
        },
        10,
    );
    assert!(late.call(b"too-late").is_err());
}

// ----------------------------------------------------------- fault storm

#[test]
fn fault_storm_converges_with_nothing_lost() {
    // Seeded storm: resets, torn writes, byte-level short reads, and
    // micro-delays on BOTH ends of every connection. Four tenants, 40
    // calls each, every reply checked against the idempotent echo
    // oracle. Zero losses, zero corruption, bounded retries — and the
    // storm must actually have fired.
    let cfg = WireConfig {
        queue_depth: 2,
        read_deadline: Duration::from_secs(2),
        write_deadline: Duration::from_secs(2),
        ..WireConfig::default()
    };
    let host = Arc::new(MemHost::new(
        echo_service(),
        cfg,
        FaultConfig::storm(0xF00D, 24),
    ));

    let mut handles = Vec::new();
    for tenant in 0..4u32 {
        let host = host.clone();
        handles.push(std::thread::spawn(move || {
            let conn_host = host.clone();
            let mut client = NetClient::new(
                tenant,
                cfg,
                BackoffPolicy {
                    base_ns: 200_000,
                    max_ns: 20_000_000,
                    max_attempts: 24,
                },
                0xBEEF ^ tenant as u64,
                Box::new(move || Ok(conn_host.connect())),
            );
            for i in 0..40u32 {
                let body = format!("tenant-{tenant}-req-{i}").into_bytes();
                let reply = client
                    .call(&body)
                    .unwrap_or_else(|e| panic!("t{tenant} req {i} lost to the storm: {e}"));
                assert_eq!(
                    reply,
                    expected_echo(tenant, &body),
                    "t{tenant} req {i} corrupted"
                );
            }
            client.stats
        }));
    }
    let stats: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    let served: u64 = stats.iter().map(|s| s.served).sum();
    let retries: u64 = stats.iter().map(|s| s.retries).sum();
    assert_eq!(served, 160, "{stats:?}");

    let faults = host.fault_stats();
    let injected = faults.resets.load(Ordering::Relaxed)
        + faults.torn_writes.load(Ordering::Relaxed)
        + faults.short_reads.load(Ordering::Relaxed);
    assert!(injected > 0, "the storm never fired");
    assert!(
        retries > 0,
        "a storm this dense must force at least one retry"
    );
    host.drain();
}

// ---------------------------------------------------------- stats frames

#[test]
fn stats_frame_roundtrips_and_survives_drain() {
    let registry = xpl_obs::Registry::new();
    let host = Arc::new(MemHost::new_obs(
        echo_service(),
        WireConfig::default(),
        FaultConfig::none(0),
        Some(&registry),
    ));

    let conn_host = host.clone();
    let mut client = NetClient::new(
        3,
        WireConfig::default(),
        BackoffPolicy::default(),
        41,
        Box::new(move || Ok(conn_host.connect())),
    );
    assert_eq!(client.call(b"warm").unwrap(), expected_echo(3, b"warm"));

    // A healthy-server snapshot: parseable, fingerprint-stable JSON.
    let snap = client.stats_snapshot().unwrap();
    let json = String::from_utf8(snap).unwrap();
    let fp = xpl_obs::parse_det_fingerprint(&json)
        .expect("snapshot carries a det fingerprint")
        .to_string();
    assert_eq!(fp.len(), 64, "sha-256 hex fingerprint: {fp}");
    assert!(json.contains("\"net.served\""), "{json}");

    host.begin_drain();

    // Ordinary calls now fail fast with Rejected...
    let err = client.call(b"after").unwrap_err();
    assert!(matches!(err, NetError::Rejected(_)), "{err:?}");

    // ...but Stats is answered before the draining check: observability
    // keeps working on the very server that is going away.
    let snap2 = client.stats_snapshot().unwrap();
    let json2 = String::from_utf8(snap2).unwrap();
    let fp2 = xpl_obs::parse_det_fingerprint(&json2).unwrap().to_string();
    assert_eq!(fp2.len(), 64);

    client.close();
    host.drain();
}

#[test]
fn stats_without_registry_is_a_typed_service_error() {
    let host = Arc::new(MemHost::new(
        echo_service(),
        WireConfig::default(),
        FaultConfig::none(0),
    ));
    let conn_host = host.clone();
    let mut client = NetClient::new(
        1,
        WireConfig::default(),
        BackoffPolicy::default(),
        42,
        Box::new(move || Ok(conn_host.connect())),
    );
    let err = client.stats_snapshot().unwrap_err();
    assert!(matches!(err, NetError::Service(_)), "{err:?}");
    client.close();
    host.drain();
}
