//! The frame codec: length-prefixed, CRC-framed messages.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! [magic "XPLN" 4][kind 1][len 4][hcrc 4]  [payload len][pcrc 4]
//!  \------------ header, 13 bytes ------/
//! ```
//!
//! `hcrc` is CRC-32 over the first 9 header bytes, so a corrupt or
//! forged length field is rejected **before** it is trusted for
//! allocation — the same hostile-input discipline as the blocked
//! codec's decode-capacity clamp. `pcrc` is CRC-32 over the payload.
//! Decoding never panics: truncation, bad magic, an unknown kind, an
//! oversized length, and either CRC mismatch all surface as typed
//! [`NetError`]s.

use crate::{NetError, Transport};
use xpl_util::Crc32;

/// Frame magic: "XPLN".
pub const MAGIC: [u8; 4] = *b"XPLN";

/// Fixed header size: magic + kind + len + header CRC.
pub const HEADER_LEN: usize = 4 + 1 + 4 + 4;

/// Trailing payload CRC size.
pub const TRAILER_LEN: usize = 4;

/// Default maximum payload size a peer will accept (1 MiB). Plenty for
/// digests and keys; a header claiming more is hostile or corrupt.
pub const DEFAULT_MAX_FRAME: u32 = 1 << 20;

/// What a frame carries.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FrameKind {
    /// Connection preamble: the tenant this connection serves.
    Hello = 1,
    /// A client request (id + opaque request bytes).
    Request = 2,
    /// A server response (id + status + opaque body).
    Response = 3,
    /// A metrics-snapshot request (id + empty body). Answered before
    /// the draining check and outside the admission gate, so snapshots
    /// stay observable mid-storm and mid-drain.
    Stats = 4,
}

impl FrameKind {
    fn from_byte(b: u8) -> Result<FrameKind, NetError> {
        match b {
            1 => Ok(FrameKind::Hello),
            2 => Ok(FrameKind::Request),
            3 => Ok(FrameKind::Response),
            4 => Ok(FrameKind::Stats),
            other => Err(NetError::BadKind(other)),
        }
    }
}

/// One decoded frame.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Frame {
    pub kind: FrameKind,
    pub payload: Vec<u8>,
}

/// Encode a frame.
pub fn encode(kind: FrameKind, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len() + TRAILER_LEN);
    out.extend_from_slice(&MAGIC);
    out.push(kind as u8);
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    let hcrc = Crc32::checksum(&out[..9]);
    out.extend_from_slice(&hcrc.to_le_bytes());
    out.extend_from_slice(payload);
    out.extend_from_slice(&Crc32::checksum(payload).to_le_bytes());
    out
}

/// Validate a header, returning the frame kind and payload length.
/// Order matters: magic, header CRC, kind, then the length bound — so a
/// forged length is never believed (the CRC has already vouched for it)
/// and an oversized one is refused before any allocation.
fn check_header(header: &[u8; HEADER_LEN], max_frame: u32) -> Result<(FrameKind, u32), NetError> {
    if header[..4] != MAGIC {
        return Err(NetError::BadMagic([
            header[0], header[1], header[2], header[3],
        ]));
    }
    let expected = u32::from_le_bytes(header[9..13].try_into().unwrap());
    let actual = Crc32::checksum(&header[..9]);
    if expected != actual {
        return Err(NetError::BadHeaderCrc { expected, actual });
    }
    let kind = FrameKind::from_byte(header[4])?;
    let len = u32::from_le_bytes(header[5..9].try_into().unwrap());
    if len > max_frame {
        return Err(NetError::FrameTooLarge {
            len,
            max: max_frame,
        });
    }
    Ok((kind, len))
}

fn check_payload(payload: &[u8], trailer: &[u8]) -> Result<(), NetError> {
    let expected = u32::from_le_bytes(trailer.try_into().unwrap());
    let actual = Crc32::checksum(payload);
    if expected != actual {
        return Err(NetError::BadPayloadCrc { expected, actual });
    }
    Ok(())
}

/// Decode one frame from a byte buffer, returning it and the number of
/// bytes consumed. Typed errors for every malformation; never panics,
/// never allocates more than the validated payload length.
pub fn decode(buf: &[u8], max_frame: u32) -> Result<(Frame, usize), NetError> {
    if buf.len() < HEADER_LEN {
        return Err(NetError::Truncated {
            needed: HEADER_LEN,
            have: buf.len(),
        });
    }
    let header: &[u8; HEADER_LEN] = buf[..HEADER_LEN].try_into().unwrap();
    let (kind, len) = check_header(header, max_frame)?;
    let total = HEADER_LEN + len as usize + TRAILER_LEN;
    if buf.len() < total {
        return Err(NetError::Truncated {
            needed: total,
            have: buf.len(),
        });
    }
    let payload = &buf[HEADER_LEN..HEADER_LEN + len as usize];
    check_payload(payload, &buf[HEADER_LEN + len as usize..total])?;
    Ok((
        Frame {
            kind,
            payload: payload.to_vec(),
        },
        total,
    ))
}

/// Read exactly `buf.len()` bytes from a transport. `Ok(false)` means
/// the peer closed cleanly before the first byte; EOF anywhere else is
/// a typed truncation.
fn read_full(t: &mut dyn Transport, buf: &mut [u8]) -> Result<bool, NetError> {
    let mut filled = 0;
    while filled < buf.len() {
        let n = t.recv(&mut buf[filled..])?;
        if n == 0 {
            if filled == 0 {
                return Ok(false);
            }
            return Err(NetError::Truncated {
                needed: buf.len(),
                have: filled,
            });
        }
        filled += n;
    }
    Ok(true)
}

/// Read one frame off a transport. `Ok(None)` is a clean close at a
/// frame boundary; a close mid-frame is [`NetError::Truncated`]. The
/// length field is validated (magic + header CRC + bound) before the
/// payload buffer is allocated.
pub fn read_frame(t: &mut dyn Transport, max_frame: u32) -> Result<Option<Frame>, NetError> {
    let mut header = [0u8; HEADER_LEN];
    if !read_full(t, &mut header)? {
        return Ok(None);
    }
    let (kind, len) = check_header(&header, max_frame)?;
    let mut rest = vec![0u8; len as usize + TRAILER_LEN];
    if !read_full(t, &mut rest)? {
        return Err(NetError::Truncated {
            needed: rest.len(),
            have: 0,
        });
    }
    let payload = &rest[..len as usize];
    check_payload(payload, &rest[len as usize..])?;
    Ok(Some(Frame {
        kind,
        payload: payload.to_vec(),
    }))
}

/// Encode and send one frame.
pub fn write_frame(t: &mut dyn Transport, kind: FrameKind, payload: &[u8]) -> Result<(), NetError> {
    t.send(&encode(kind, payload))
}

// --------------------------------------------- message-level payloads

/// Response status byte: the request was served.
pub const STATUS_OK: u8 = 0;
/// Response status byte: the tenant's admission bound was full — a
/// typed wire response, never a dropped connection. Retry after
/// backoff.
pub const STATUS_OVERLOAD: u8 = 1;
/// Response status byte: the server is draining; do not retry here.
pub const STATUS_DRAINING: u8 = 2;
/// Response status byte: the service failed; the body is the message.
pub const STATUS_ERROR: u8 = 3;

/// `Request` payload: `[id u64 LE][body]`.
pub fn encode_request(id: u64, body: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(8 + body.len());
    out.extend_from_slice(&id.to_le_bytes());
    out.extend_from_slice(body);
    out
}

/// Parse a `Request` payload.
pub fn decode_request(payload: &[u8]) -> Result<(u64, &[u8]), NetError> {
    if payload.len() < 8 {
        return Err(NetError::Malformed(format!(
            "request payload of {} bytes is shorter than its 8-byte id",
            payload.len()
        )));
    }
    let id = u64::from_le_bytes(payload[..8].try_into().unwrap());
    Ok((id, &payload[8..]))
}

/// `Response` payload: `[id u64 LE][status u8][body]`.
pub fn encode_response(id: u64, status: u8, body: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(9 + body.len());
    out.extend_from_slice(&id.to_le_bytes());
    out.push(status);
    out.extend_from_slice(body);
    out
}

/// Parse a `Response` payload.
pub fn decode_response(payload: &[u8]) -> Result<(u64, u8, &[u8]), NetError> {
    if payload.len() < 9 {
        return Err(NetError::Malformed(format!(
            "response payload of {} bytes is shorter than its 9-byte header",
            payload.len()
        )));
    }
    let id = u64::from_le_bytes(payload[..8].try_into().unwrap());
    Ok((id, payload[8], &payload[9..]))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        for payload in [&b""[..], b"x", b"hello wire", &[0u8; 4096]] {
            let bytes = encode(FrameKind::Request, payload);
            let (frame, used) = decode(&bytes, DEFAULT_MAX_FRAME).unwrap();
            assert_eq!(used, bytes.len());
            assert_eq!(frame.kind, FrameKind::Request);
            assert_eq!(frame.payload, payload);
        }
    }

    #[test]
    fn hostile_length_rejected_before_allocation() {
        // A header claiming 3 GiB with a *valid* header CRC: the only
        // defense is the max-frame bound, checked before allocating.
        let mut bytes = encode(FrameKind::Request, b"small");
        bytes[5..9].copy_from_slice(&(3u32 << 30).to_le_bytes());
        let hcrc = Crc32::checksum(&bytes[..9]);
        bytes[9..13].copy_from_slice(&hcrc.to_le_bytes());
        assert_eq!(
            decode(&bytes, DEFAULT_MAX_FRAME),
            Err(NetError::FrameTooLarge {
                len: 3 << 30,
                max: DEFAULT_MAX_FRAME
            })
        );
    }

    #[test]
    fn forged_length_without_crc_is_caught_by_header_crc() {
        let mut bytes = encode(FrameKind::Request, b"small");
        bytes[5..9].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            decode(&bytes, DEFAULT_MAX_FRAME),
            Err(NetError::BadHeaderCrc { .. })
        ));
    }

    #[test]
    fn bad_kind_and_magic_are_typed() {
        let mut bytes = encode(FrameKind::Hello, b"t");
        bytes[0] ^= 0xFF;
        assert!(matches!(decode(&bytes, 1024), Err(NetError::BadMagic(_))));

        let mut bytes = encode(FrameKind::Hello, b"t");
        bytes[4] = 0x7F;
        let hcrc = Crc32::checksum(&bytes[..9]);
        bytes[9..13].copy_from_slice(&hcrc.to_le_bytes());
        assert_eq!(decode(&bytes, 1024), Err(NetError::BadKind(0x7F)));
    }
}
