//! The threaded wire server.
//!
//! One thread per connection, each running [`serve_connection`]:
//! handshake (a `Hello` frame naming the connection's tenant), then a
//! request/response loop. Per-connection tenants map onto the
//! registry's [`AdmissionGate`] — a full tenant bound becomes a typed
//! `Overload` wire response, never a dropped connection. Read and write
//! deadlines bound every blocking step, so a stalled or vanished client
//! is *evicted* (connection closed, counted) instead of pinning a
//! thread forever. Shutdown is a graceful drain: stop accepting, let
//! in-flight requests finish, answer anything newly read with
//! `Draining`, flush, then close.
//!
//! Two front ends share the connection loop: [`NetServer`] accepts real
//! TCP sockets; [`MemHost`] hands out in-memory (optionally
//! fault-injected) connections for deterministic robustness tests.

use crate::frame::{
    decode_request, encode_response, read_frame, write_frame, FrameKind, DEFAULT_MAX_FRAME,
    STATUS_DRAINING, STATUS_ERROR, STATUS_OK, STATUS_OVERLOAD,
};
use crate::transport::{mem_pair, FaultConfig, FaultStats, FaultTransport, TcpTransport};
use crate::{NetError, Transport};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;
use xpl_registry::AdmissionGate;

/// What the server executes once a request is admitted. Implemented by
/// the bench crate over a real image store; tests use closures.
pub trait WireService: Send + Sync {
    fn call(&self, tenant: u32, request: &[u8]) -> Result<Vec<u8>, String>;
}

impl<F> WireService for F
where
    F: Fn(u32, &[u8]) -> Result<Vec<u8>, String> + Send + Sync,
{
    fn call(&self, tenant: u32, request: &[u8]) -> Result<Vec<u8>, String> {
        self(tenant, request)
    }
}

/// Wire-level policy shared by server and client.
#[derive(Clone, Copy, Debug)]
pub struct WireConfig {
    /// Maximum accepted frame payload.
    pub max_frame: u32,
    /// Per-read deadline; a connection that stalls longer mid-request
    /// is evicted.
    pub read_deadline: Duration,
    /// Per-write deadline; a client that stops draining its socket is
    /// evicted.
    pub write_deadline: Duration,
    /// Per-tenant admission bound (concurrent in-flight requests).
    pub queue_depth: usize,
}

impl Default for WireConfig {
    fn default() -> Self {
        WireConfig {
            max_frame: DEFAULT_MAX_FRAME,
            read_deadline: Duration::from_secs(10),
            write_deadline: Duration::from_secs(10),
            queue_depth: 64,
        }
    }
}

/// Atomic server-side accounting — every way a request or connection
/// can end is counted somewhere, so "nothing silently lost" is
/// checkable: `connections`, `served`, `overloads`, `drain_rejects`,
/// `service_errors`, `evictions` (deadline), `peer_closed` (client
/// vanished), `frame_errors` (protocol garbage).
#[derive(Debug, Default)]
pub struct ServerStats {
    pub connections: AtomicU64,
    pub served: AtomicU64,
    pub overloads: AtomicU64,
    pub drain_rejects: AtomicU64,
    pub service_errors: AtomicU64,
    pub evictions: AtomicU64,
    pub peer_closed: AtomicU64,
    pub frame_errors: AtomicU64,
}

/// Plain-number snapshot of [`ServerStats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServerStatsSnapshot {
    pub connections: u64,
    pub served: u64,
    pub overloads: u64,
    pub drain_rejects: u64,
    pub service_errors: u64,
    pub evictions: u64,
    pub peer_closed: u64,
    pub frame_errors: u64,
}

impl ServerStats {
    fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    pub fn snapshot(&self) -> ServerStatsSnapshot {
        ServerStatsSnapshot {
            connections: self.connections.load(Ordering::Relaxed),
            served: self.served.load(Ordering::Relaxed),
            overloads: self.overloads.load(Ordering::Relaxed),
            drain_rejects: self.drain_rejects.load(Ordering::Relaxed),
            service_errors: self.service_errors.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            peer_closed: self.peer_closed.load(Ordering::Relaxed),
            frame_errors: self.frame_errors.load(Ordering::Relaxed),
        }
    }
}

/// Serve one connection until the peer closes, a deadline evicts it, or
/// drain finishes it. Every exit path is typed and counted; nothing in
/// here panics on peer misbehavior (a mid-response vanishing client
/// surfaces as [`NetError::PeerClosed`] on the write and is counted).
pub fn serve_connection(
    mut t: Box<dyn Transport>,
    svc: &dyn WireService,
    gate: &AdmissionGate,
    cfg: &WireConfig,
    draining: &AtomicBool,
    stats: &ServerStats,
) {
    let _ = t.set_read_deadline(Some(cfg.read_deadline));
    let _ = t.set_write_deadline(Some(cfg.write_deadline));

    // Handshake: the first frame must be Hello naming the tenant.
    let tenant = match read_frame(&mut *t, cfg.max_frame) {
        Ok(Some(f)) if f.kind == FrameKind::Hello && f.payload.len() == 4 => {
            u32::from_le_bytes(f.payload[..4].try_into().unwrap())
        }
        Ok(None) => return, // connected and left: nothing lost
        Ok(Some(_)) => {
            ServerStats::bump(&stats.frame_errors);
            t.shutdown();
            return;
        }
        Err(NetError::Timeout) => {
            ServerStats::bump(&stats.evictions);
            t.shutdown();
            return;
        }
        Err(NetError::PeerClosed | NetError::Reset | NetError::Truncated { .. }) => {
            ServerStats::bump(&stats.peer_closed);
            t.shutdown();
            return;
        }
        Err(_) => {
            ServerStats::bump(&stats.frame_errors);
            t.shutdown();
            return;
        }
    };

    loop {
        let frame = match read_frame(&mut *t, cfg.max_frame) {
            Ok(Some(f)) => f,
            Ok(None) => break, // clean close at a frame boundary
            Err(NetError::Timeout) => {
                // Slow-client eviction: stalled mid-request past the
                // read deadline.
                ServerStats::bump(&stats.evictions);
                break;
            }
            Err(NetError::PeerClosed | NetError::Reset | NetError::Truncated { .. }) => {
                ServerStats::bump(&stats.peer_closed);
                break;
            }
            Err(_) => {
                // Hostile header (oversized length, bad CRC, bad magic):
                // rejected typed before any allocation; drop the link.
                ServerStats::bump(&stats.frame_errors);
                break;
            }
        };
        if frame.kind != FrameKind::Request {
            ServerStats::bump(&stats.frame_errors);
            break;
        }
        let (id, body) = match decode_request(&frame.payload) {
            Ok(x) => x,
            Err(_) => {
                ServerStats::bump(&stats.frame_errors);
                break;
            }
        };

        let (status, reply) = if draining.load(Ordering::Acquire) {
            ServerStats::bump(&stats.drain_rejects);
            (STATUS_DRAINING, b"server draining".to_vec())
        } else {
            match gate.try_admit(tenant) {
                Err(over) => {
                    ServerStats::bump(&stats.overloads);
                    (
                        STATUS_OVERLOAD,
                        format!("{} in flight", over.in_flight).into_bytes(),
                    )
                }
                Ok(_permit) => match svc.call(tenant, body) {
                    Ok(bytes) => {
                        ServerStats::bump(&stats.served);
                        (STATUS_OK, bytes)
                    }
                    Err(msg) => {
                        ServerStats::bump(&stats.service_errors);
                        (STATUS_ERROR, msg.into_bytes())
                    }
                },
            }
        };

        match write_frame(
            &mut *t,
            FrameKind::Response,
            &encode_response(id, status, &reply),
        ) {
            Ok(()) => {}
            Err(NetError::PeerClosed | NetError::Reset) => {
                // The client died mid-response: typed, counted, never a
                // panic (SIGPIPE is ignored; EPIPE maps to PeerClosed).
                ServerStats::bump(&stats.peer_closed);
                break;
            }
            Err(NetError::Timeout) => {
                ServerStats::bump(&stats.evictions);
                break;
            }
            Err(_) => {
                ServerStats::bump(&stats.frame_errors);
                break;
            }
        }
        if status == STATUS_DRAINING {
            break; // drained response flushed; close the connection
        }
    }
    t.shutdown();
}

// ---------------------------------------------------------- TCP server

/// A threaded TCP front end: accept loop + one thread per connection.
pub struct NetServer {
    addr: SocketAddr,
    stopped: Arc<AtomicBool>,
    draining: Arc<AtomicBool>,
    stats: Arc<ServerStats>,
    accept: Option<JoinHandle<()>>,
    conns: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl NetServer {
    /// Bind and start accepting. `addr` is typically `"127.0.0.1:0"`;
    /// read the bound port back with [`NetServer::local_addr`].
    pub fn bind(
        addr: &str,
        svc: Arc<dyn WireService>,
        cfg: WireConfig,
    ) -> Result<NetServer, NetError> {
        let listener = TcpListener::bind(addr).map_err(NetError::from_io)?;
        let addr = listener.local_addr().map_err(NetError::from_io)?;
        let stopped = Arc::new(AtomicBool::new(false));
        let draining = Arc::new(AtomicBool::new(false));
        let stats = Arc::new(ServerStats::default());
        let gate = Arc::new(AdmissionGate::new(cfg.queue_depth));
        let conns: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));

        let accept = {
            let (stopped, draining, stats, conns) = (
                stopped.clone(),
                draining.clone(),
                stats.clone(),
                conns.clone(),
            );
            std::thread::Builder::new()
                .name("xpl-net-accept".into())
                .spawn(move || {
                    for stream in listener.incoming() {
                        if stopped.load(Ordering::Acquire) {
                            break;
                        }
                        let Ok(stream) = stream else { continue };
                        ServerStats::bump(&stats.connections);
                        let (svc, gate, draining, stats) =
                            (svc.clone(), gate.clone(), draining.clone(), stats.clone());
                        let handle = std::thread::Builder::new()
                            .name("xpl-net-conn".into())
                            .spawn(move || {
                                serve_connection(
                                    Box::new(TcpTransport::new(stream)),
                                    &*svc,
                                    &gate,
                                    &cfg,
                                    &draining,
                                    &stats,
                                );
                            })
                            .expect("spawn connection thread");
                        conns.lock().unwrap().push(handle);
                    }
                })
                .expect("spawn accept thread")
        };

        Ok(NetServer {
            addr,
            stopped,
            draining,
            stats,
            accept: Some(accept),
            conns,
        })
    }

    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    pub fn stats(&self) -> ServerStatsSnapshot {
        self.stats.snapshot()
    }

    /// Graceful drain: stop accepting, let in-flight requests finish
    /// (new reads are answered `Draining` and closed), join every
    /// connection thread, and return the final accounting.
    pub fn drain(mut self) -> ServerStatsSnapshot {
        self.draining.store(true, Ordering::Release);
        self.stopped.store(true, Ordering::Release);
        // Wake the blocking accept with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        let handles: Vec<JoinHandle<()>> = std::mem::take(&mut *self.conns.lock().unwrap());
        for h in handles {
            let _ = h.join();
        }
        self.stats.snapshot()
    }
}

impl Drop for NetServer {
    fn drop(&mut self) {
        // Undrained drop: stop the accept loop but don't block in drop.
        self.stopped.store(true, Ordering::Release);
        self.draining.store(true, Ordering::Release);
        let _ = TcpStream::connect(self.addr);
    }
}

// ------------------------------------------------------------- MemHost

/// An in-memory "listener": every [`MemHost::connect`] spawns a server
/// thread on one end of a fresh pipe and hands back the client end,
/// optionally wrapping **both** ends in seeded [`FaultTransport`]s (the
/// per-256 rates from [`FaultConfig`]). Deterministic per connection;
/// the robustness harness and tests drive this instead of real sockets.
pub struct MemHost {
    svc: Arc<dyn WireService>,
    cfg: WireConfig,
    gate: Arc<AdmissionGate>,
    draining: Arc<AtomicBool>,
    stats: Arc<ServerStats>,
    faults: FaultConfig,
    fault_stats: Arc<FaultStats>,
    conns: Mutex<Vec<JoinHandle<()>>>,
    next_conn: AtomicU64,
}

impl MemHost {
    pub fn new(svc: Arc<dyn WireService>, cfg: WireConfig, faults: FaultConfig) -> MemHost {
        MemHost {
            svc,
            gate: Arc::new(AdmissionGate::new(cfg.queue_depth)),
            cfg,
            draining: Arc::new(AtomicBool::new(false)),
            stats: Arc::new(ServerStats::default()),
            faults,
            fault_stats: Arc::new(FaultStats::default()),
            conns: Mutex::new(Vec::new()),
            next_conn: AtomicU64::new(0),
        }
    }

    /// Open a connection; returns the client-end transport.
    pub fn connect(&self) -> Box<dyn Transport> {
        let id = self.next_conn.fetch_add(1, Ordering::Relaxed);
        let (client_end, server_end) = mem_pair();
        let server_t: Box<dyn Transport> = if self.faults.is_none() {
            Box::new(server_end)
        } else {
            Box::new(FaultTransport::new(
                Box::new(server_end),
                self.faults,
                &format!("srv-{id}"),
                self.fault_stats.clone(),
            ))
        };
        let client_t: Box<dyn Transport> = if self.faults.is_none() {
            Box::new(client_end)
        } else {
            Box::new(FaultTransport::new(
                Box::new(client_end),
                self.faults,
                &format!("cli-{id}"),
                self.fault_stats.clone(),
            ))
        };
        ServerStats::bump(&self.stats.connections);
        let (svc, gate, cfg, draining, stats) = (
            self.svc.clone(),
            self.gate.clone(),
            self.cfg,
            self.draining.clone(),
            self.stats.clone(),
        );
        let handle = std::thread::Builder::new()
            .name(format!("xpl-net-mem-{id}"))
            .spawn(move || serve_connection(server_t, &*svc, &gate, &cfg, &draining, &stats))
            .expect("spawn mem connection thread");
        self.conns.lock().unwrap().push(handle);
        client_t
    }

    /// Flip the draining flag without joining: connections answer their
    /// next request with `Draining` and close. Call [`MemHost::drain`]
    /// afterwards to join; split so a test can observe the fail-fast
    /// client behavior before connection threads are reaped.
    pub fn begin_drain(&self) {
        self.draining.store(true, Ordering::Release);
    }

    /// Graceful drain, same semantics as [`NetServer::drain`].
    pub fn drain(&self) -> ServerStatsSnapshot {
        self.draining.store(true, Ordering::Release);
        let handles: Vec<JoinHandle<()>> = std::mem::take(&mut *self.conns.lock().unwrap());
        for h in handles {
            let _ = h.join();
        }
        self.stats.snapshot()
    }

    pub fn stats(&self) -> ServerStatsSnapshot {
        self.stats.snapshot()
    }

    /// Currently admitted in-flight requests for `tenant` (test
    /// introspection into the admission gate).
    pub fn gate_in_flight(&self, tenant: u32) -> usize {
        self.gate.in_flight(tenant)
    }

    /// Injected-fault counters (all zero when faults are disabled).
    pub fn fault_stats(&self) -> &FaultStats {
        &self.fault_stats
    }
}
