//! The threaded wire server.
//!
//! One thread per connection, each running [`serve_connection`]:
//! handshake (a `Hello` frame naming the connection's tenant), then a
//! request/response loop. Per-connection tenants map onto the
//! registry's [`AdmissionGate`] — a full tenant bound becomes a typed
//! `Overload` wire response, never a dropped connection. Read and write
//! deadlines bound every blocking step, so a stalled or vanished client
//! is *evicted* (connection closed, counted) instead of pinning a
//! thread forever. Shutdown is a graceful drain: stop accepting, let
//! in-flight requests finish, answer anything newly read with
//! `Draining`, flush, then close.
//!
//! Two front ends share the connection loop: [`NetServer`] accepts real
//! TCP sockets; [`MemHost`] hands out in-memory (optionally
//! fault-injected) connections for deterministic robustness tests.

use crate::frame::{
    decode_request, encode_response, read_frame, write_frame, FrameKind, DEFAULT_MAX_FRAME,
    STATUS_DRAINING, STATUS_ERROR, STATUS_OK, STATUS_OVERLOAD,
};
use crate::transport::{mem_pair, FaultConfig, FaultStats, FaultTransport, TcpTransport};
use crate::{NetError, Transport};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;
use xpl_obs::{Counter, Registry, Section};
use xpl_registry::AdmissionGate;

/// What the server executes once a request is admitted. Implemented by
/// the bench crate over a real image store; tests use closures.
pub trait WireService: Send + Sync {
    fn call(&self, tenant: u32, request: &[u8]) -> Result<Vec<u8>, String>;
}

impl<F> WireService for F
where
    F: Fn(u32, &[u8]) -> Result<Vec<u8>, String> + Send + Sync,
{
    fn call(&self, tenant: u32, request: &[u8]) -> Result<Vec<u8>, String> {
        self(tenant, request)
    }
}

/// Wire-level policy shared by server and client.
#[derive(Clone, Copy, Debug)]
pub struct WireConfig {
    /// Maximum accepted frame payload.
    pub max_frame: u32,
    /// Per-read deadline; a connection that stalls longer mid-request
    /// is evicted.
    pub read_deadline: Duration,
    /// Per-write deadline; a client that stops draining its socket is
    /// evicted.
    pub write_deadline: Duration,
    /// Per-tenant admission bound (concurrent in-flight requests).
    pub queue_depth: usize,
}

impl Default for WireConfig {
    fn default() -> Self {
        WireConfig {
            max_frame: DEFAULT_MAX_FRAME,
            read_deadline: Duration::from_secs(10),
            write_deadline: Duration::from_secs(10),
            queue_depth: 64,
        }
    }
}

/// Atomic server-side accounting — every way a request or connection
/// can end is counted somewhere, so "nothing silently lost" is
/// checkable: `connections`, `served`, `overloads`, `drain_rejects`,
/// `service_errors`, `evictions` (deadline), `peer_closed` (client
/// vanished), `frame_errors` (protocol garbage).
#[derive(Debug, Default)]
pub struct ServerStats {
    pub connections: AtomicU64,
    pub served: AtomicU64,
    pub overloads: AtomicU64,
    pub drain_rejects: AtomicU64,
    pub service_errors: AtomicU64,
    pub evictions: AtomicU64,
    pub peer_closed: AtomicU64,
    pub frame_errors: AtomicU64,
}

/// Plain-number snapshot of [`ServerStats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServerStatsSnapshot {
    pub connections: u64,
    pub served: u64,
    pub overloads: u64,
    pub drain_rejects: u64,
    pub service_errors: u64,
    pub evictions: u64,
    pub peer_closed: u64,
    pub frame_errors: u64,
}

/// Every way a request or connection can end — the one event vocabulary
/// both [`ServerStats`] and the registry mirror count in.
#[derive(Clone, Copy, Debug)]
enum Event {
    Connection,
    Served,
    Overload,
    DrainReject,
    ServiceError,
    Eviction,
    PeerClosed,
    FrameError,
}

/// Registry-side mirror of the server's wire accounting, plus raw frame
/// counts and `Stats`-request serves. All wall-section: connection
/// lifetimes, deadline evictions and fault-triggered retries depend on
/// real scheduling, so these counts are honest but not thread-count
/// deterministic.
pub struct ServerObs {
    registry: Arc<Registry>,
    connections: Arc<Counter>,
    served: Arc<Counter>,
    overloads: Arc<Counter>,
    drain_rejects: Arc<Counter>,
    service_errors: Arc<Counter>,
    evictions: Arc<Counter>,
    peer_closed: Arc<Counter>,
    frame_errors: Arc<Counter>,
    frames_in: Arc<Counter>,
    frames_out: Arc<Counter>,
    stats_served: Arc<Counter>,
}

impl ServerObs {
    /// Resolve (or re-use) the `net.*` metric family in `reg`.
    pub fn new(reg: &Arc<Registry>) -> Arc<ServerObs> {
        let c = |name: &str| reg.counter(name, Section::Wall);
        Arc::new(ServerObs {
            connections: c("net.connections"),
            served: c("net.served"),
            overloads: c("net.overloads"),
            drain_rejects: c("net.drain_rejects"),
            service_errors: c("net.service_errors"),
            evictions: c("net.evictions"),
            peer_closed: c("net.peer_closed"),
            frame_errors: c("net.frame_errors"),
            frames_in: c("net.frames.in"),
            frames_out: c("net.frames.out"),
            stats_served: c("net.stats.served"),
            registry: Arc::clone(reg),
        })
    }

    /// The registry whose snapshot answers `Stats` wire requests.
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    fn counter(&self, ev: Event) -> &Counter {
        match ev {
            Event::Connection => &self.connections,
            Event::Served => &self.served,
            Event::Overload => &self.overloads,
            Event::DrainReject => &self.drain_rejects,
            Event::ServiceError => &self.service_errors,
            Event::Eviction => &self.evictions,
            Event::PeerClosed => &self.peer_closed,
            Event::FrameError => &self.frame_errors,
        }
    }
}

impl ServerStats {
    fn field(&self, ev: Event) -> &AtomicU64 {
        match ev {
            Event::Connection => &self.connections,
            Event::Served => &self.served,
            Event::Overload => &self.overloads,
            Event::DrainReject => &self.drain_rejects,
            Event::ServiceError => &self.service_errors,
            Event::Eviction => &self.evictions,
            Event::PeerClosed => &self.peer_closed,
            Event::FrameError => &self.frame_errors,
        }
    }

    /// Count `ev` in the atomic field and, when attached, the registry
    /// mirror — one call site per event, so the two can never skew.
    fn count(&self, ev: Event, obs: Option<&ServerObs>) {
        self.field(ev).fetch_add(1, Ordering::Relaxed);
        if let Some(o) = obs {
            o.counter(ev).inc();
        }
    }

    pub fn snapshot(&self) -> ServerStatsSnapshot {
        ServerStatsSnapshot {
            connections: self.connections.load(Ordering::Relaxed),
            served: self.served.load(Ordering::Relaxed),
            overloads: self.overloads.load(Ordering::Relaxed),
            drain_rejects: self.drain_rejects.load(Ordering::Relaxed),
            service_errors: self.service_errors.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            peer_closed: self.peer_closed.load(Ordering::Relaxed),
            frame_errors: self.frame_errors.load(Ordering::Relaxed),
        }
    }
}

/// Serve one connection until the peer closes, a deadline evicts it, or
/// drain finishes it. Every exit path is typed and counted; nothing in
/// here panics on peer misbehavior (a mid-response vanishing client
/// surfaces as [`NetError::PeerClosed`] on the write and is counted).
pub fn serve_connection(
    mut t: Box<dyn Transport>,
    svc: &dyn WireService,
    gate: &AdmissionGate,
    cfg: &WireConfig,
    draining: &AtomicBool,
    stats: &ServerStats,
    obs: Option<&ServerObs>,
) {
    let _ = t.set_read_deadline(Some(cfg.read_deadline));
    let _ = t.set_write_deadline(Some(cfg.write_deadline));

    // Handshake: the first frame must be Hello naming the tenant.
    let tenant = match read_frame(&mut *t, cfg.max_frame) {
        Ok(Some(f)) if f.kind == FrameKind::Hello && f.payload.len() == 4 => {
            if let Some(o) = obs {
                o.frames_in.inc();
            }
            u32::from_le_bytes(f.payload[..4].try_into().unwrap())
        }
        Ok(None) => return, // connected and left: nothing lost
        Ok(Some(_)) => {
            stats.count(Event::FrameError, obs);
            t.shutdown();
            return;
        }
        Err(NetError::Timeout) => {
            stats.count(Event::Eviction, obs);
            t.shutdown();
            return;
        }
        Err(NetError::PeerClosed | NetError::Reset | NetError::Truncated { .. }) => {
            stats.count(Event::PeerClosed, obs);
            t.shutdown();
            return;
        }
        Err(_) => {
            stats.count(Event::FrameError, obs);
            t.shutdown();
            return;
        }
    };

    loop {
        let frame = match read_frame(&mut *t, cfg.max_frame) {
            Ok(Some(f)) => f,
            Ok(None) => break, // clean close at a frame boundary
            Err(NetError::Timeout) => {
                // Slow-client eviction: stalled mid-request past the
                // read deadline.
                stats.count(Event::Eviction, obs);
                break;
            }
            Err(NetError::PeerClosed | NetError::Reset | NetError::Truncated { .. }) => {
                stats.count(Event::PeerClosed, obs);
                break;
            }
            Err(_) => {
                // Hostile header (oversized length, bad CRC, bad magic):
                // rejected typed before any allocation; drop the link.
                stats.count(Event::FrameError, obs);
                break;
            }
        };
        if let Some(o) = obs {
            o.frames_in.inc();
        }
        if frame.kind != FrameKind::Request && frame.kind != FrameKind::Stats {
            stats.count(Event::FrameError, obs);
            break;
        }
        let (id, body) = match decode_request(&frame.payload) {
            Ok(x) => x,
            Err(_) => {
                stats.count(Event::FrameError, obs);
                break;
            }
        };

        // A Stats request is answered before the draining check and
        // outside the admission gate: observability must keep working
        // exactly when the server is overloaded, faulting, or drained.
        if frame.kind == FrameKind::Stats {
            let (status, reply) = match obs {
                Some(o) => {
                    o.stats_served.inc();
                    (STATUS_OK, o.registry.snapshot().render_json().into_bytes())
                }
                None => (STATUS_ERROR, b"no metrics registry attached".to_vec()),
            };
            if !send_reply(&mut *t, stats, obs, id, status, &reply) {
                break;
            }
            continue;
        }

        let (status, reply) = if draining.load(Ordering::Acquire) {
            stats.count(Event::DrainReject, obs);
            (STATUS_DRAINING, b"server draining".to_vec())
        } else {
            match gate.try_admit(tenant) {
                Err(over) => {
                    stats.count(Event::Overload, obs);
                    (
                        STATUS_OVERLOAD,
                        format!("{} in flight", over.in_flight).into_bytes(),
                    )
                }
                Ok(_permit) => match svc.call(tenant, body) {
                    Ok(bytes) => {
                        stats.count(Event::Served, obs);
                        (STATUS_OK, bytes)
                    }
                    Err(msg) => {
                        stats.count(Event::ServiceError, obs);
                        (STATUS_ERROR, msg.into_bytes())
                    }
                },
            }
        };

        if !send_reply(&mut *t, stats, obs, id, status, &reply) {
            break;
        }
        if status == STATUS_DRAINING {
            break; // drained response flushed; close the connection
        }
    }
    t.shutdown();
}

/// Write one response frame, counting every failure mode. Returns
/// `false` when the connection is done for.
fn send_reply(
    t: &mut dyn Transport,
    stats: &ServerStats,
    obs: Option<&ServerObs>,
    id: u64,
    status: u8,
    reply: &[u8],
) -> bool {
    match write_frame(t, FrameKind::Response, &encode_response(id, status, reply)) {
        Ok(()) => {
            if let Some(o) = obs {
                o.frames_out.inc();
            }
            true
        }
        Err(NetError::PeerClosed | NetError::Reset) => {
            // The client died mid-response: typed, counted, never a
            // panic (SIGPIPE is ignored; EPIPE maps to PeerClosed).
            stats.count(Event::PeerClosed, obs);
            false
        }
        Err(NetError::Timeout) => {
            stats.count(Event::Eviction, obs);
            false
        }
        Err(_) => {
            stats.count(Event::FrameError, obs);
            false
        }
    }
}

// ---------------------------------------------------------- TCP server

/// A threaded TCP front end: accept loop + one thread per connection.
pub struct NetServer {
    addr: SocketAddr,
    stopped: Arc<AtomicBool>,
    draining: Arc<AtomicBool>,
    stats: Arc<ServerStats>,
    accept: Option<JoinHandle<()>>,
    conns: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl NetServer {
    /// Bind and start accepting. `addr` is typically `"127.0.0.1:0"`;
    /// read the bound port back with [`NetServer::local_addr`].
    pub fn bind(
        addr: &str,
        svc: Arc<dyn WireService>,
        cfg: WireConfig,
    ) -> Result<NetServer, NetError> {
        NetServer::bind_obs(addr, svc, cfg, None)
    }

    /// [`NetServer::bind`] with a metrics registry: every connection
    /// mirrors its accounting into `net.*` counters and answers
    /// [`FrameKind::Stats`] requests with a registry snapshot.
    pub fn bind_obs(
        addr: &str,
        svc: Arc<dyn WireService>,
        cfg: WireConfig,
        registry: Option<&Arc<Registry>>,
    ) -> Result<NetServer, NetError> {
        let listener = TcpListener::bind(addr).map_err(NetError::from_io)?;
        let addr = listener.local_addr().map_err(NetError::from_io)?;
        let stopped = Arc::new(AtomicBool::new(false));
        let draining = Arc::new(AtomicBool::new(false));
        let stats = Arc::new(ServerStats::default());
        let gate = Arc::new(AdmissionGate::new(cfg.queue_depth));
        let conns: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        let obs: Option<Arc<ServerObs>> = registry.map(ServerObs::new);

        let accept = {
            let (stopped, draining, stats, conns) = (
                stopped.clone(),
                draining.clone(),
                stats.clone(),
                conns.clone(),
            );
            std::thread::Builder::new()
                .name("xpl-net-accept".into())
                .spawn(move || {
                    for stream in listener.incoming() {
                        if stopped.load(Ordering::Acquire) {
                            break;
                        }
                        let Ok(stream) = stream else { continue };
                        stats.count(Event::Connection, obs.as_deref());
                        let (svc, gate, draining, stats, obs) = (
                            svc.clone(),
                            gate.clone(),
                            draining.clone(),
                            stats.clone(),
                            obs.clone(),
                        );
                        let handle = std::thread::Builder::new()
                            .name("xpl-net-conn".into())
                            .spawn(move || {
                                serve_connection(
                                    Box::new(TcpTransport::new(stream)),
                                    &*svc,
                                    &gate,
                                    &cfg,
                                    &draining,
                                    &stats,
                                    obs.as_deref(),
                                );
                            })
                            .expect("spawn connection thread");
                        conns.lock().unwrap().push(handle);
                    }
                })
                .expect("spawn accept thread")
        };

        Ok(NetServer {
            addr,
            stopped,
            draining,
            stats,
            accept: Some(accept),
            conns,
        })
    }

    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    pub fn stats(&self) -> ServerStatsSnapshot {
        self.stats.snapshot()
    }

    /// Graceful drain: stop accepting, let in-flight requests finish
    /// (new reads are answered `Draining` and closed), join every
    /// connection thread, and return the final accounting.
    pub fn drain(mut self) -> ServerStatsSnapshot {
        self.draining.store(true, Ordering::Release);
        self.stopped.store(true, Ordering::Release);
        // Wake the blocking accept with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        let handles: Vec<JoinHandle<()>> = std::mem::take(&mut *self.conns.lock().unwrap());
        for h in handles {
            let _ = h.join();
        }
        self.stats.snapshot()
    }
}

impl Drop for NetServer {
    fn drop(&mut self) {
        // Undrained drop: stop the accept loop but don't block in drop.
        self.stopped.store(true, Ordering::Release);
        self.draining.store(true, Ordering::Release);
        let _ = TcpStream::connect(self.addr);
    }
}

// ------------------------------------------------------------- MemHost

/// An in-memory "listener": every [`MemHost::connect`] spawns a server
/// thread on one end of a fresh pipe and hands back the client end,
/// optionally wrapping **both** ends in seeded [`FaultTransport`]s (the
/// per-256 rates from [`FaultConfig`]). Deterministic per connection;
/// the robustness harness and tests drive this instead of real sockets.
pub struct MemHost {
    svc: Arc<dyn WireService>,
    cfg: WireConfig,
    gate: Arc<AdmissionGate>,
    draining: Arc<AtomicBool>,
    stats: Arc<ServerStats>,
    faults: FaultConfig,
    fault_stats: Arc<FaultStats>,
    conns: Mutex<Vec<JoinHandle<()>>>,
    next_conn: AtomicU64,
    obs: Option<Arc<ServerObs>>,
}

impl MemHost {
    pub fn new(svc: Arc<dyn WireService>, cfg: WireConfig, faults: FaultConfig) -> MemHost {
        MemHost::new_obs(svc, cfg, faults, None)
    }

    /// [`MemHost::new`] with a metrics registry: connections mirror
    /// their accounting into `net.*` counters and answer
    /// [`FrameKind::Stats`] requests with a registry snapshot.
    pub fn new_obs(
        svc: Arc<dyn WireService>,
        cfg: WireConfig,
        faults: FaultConfig,
        registry: Option<&Arc<Registry>>,
    ) -> MemHost {
        MemHost {
            svc,
            gate: Arc::new(AdmissionGate::new(cfg.queue_depth)),
            cfg,
            draining: Arc::new(AtomicBool::new(false)),
            stats: Arc::new(ServerStats::default()),
            faults,
            fault_stats: Arc::new(FaultStats::default()),
            conns: Mutex::new(Vec::new()),
            next_conn: AtomicU64::new(0),
            obs: registry.map(ServerObs::new),
        }
    }

    /// Open a connection; returns the client-end transport.
    pub fn connect(&self) -> Box<dyn Transport> {
        let id = self.next_conn.fetch_add(1, Ordering::Relaxed);
        let (client_end, server_end) = mem_pair();
        let server_t: Box<dyn Transport> = if self.faults.is_none() {
            Box::new(server_end)
        } else {
            Box::new(FaultTransport::new(
                Box::new(server_end),
                self.faults,
                &format!("srv-{id}"),
                self.fault_stats.clone(),
            ))
        };
        let client_t: Box<dyn Transport> = if self.faults.is_none() {
            Box::new(client_end)
        } else {
            Box::new(FaultTransport::new(
                Box::new(client_end),
                self.faults,
                &format!("cli-{id}"),
                self.fault_stats.clone(),
            ))
        };
        self.stats.count(Event::Connection, self.obs.as_deref());
        let (svc, gate, cfg, draining, stats, obs) = (
            self.svc.clone(),
            self.gate.clone(),
            self.cfg,
            self.draining.clone(),
            self.stats.clone(),
            self.obs.clone(),
        );
        let handle = std::thread::Builder::new()
            .name(format!("xpl-net-mem-{id}"))
            .spawn(move || {
                serve_connection(
                    server_t,
                    &*svc,
                    &gate,
                    &cfg,
                    &draining,
                    &stats,
                    obs.as_deref(),
                )
            })
            .expect("spawn mem connection thread");
        self.conns.lock().unwrap().push(handle);
        client_t
    }

    /// Flip the draining flag without joining: connections answer their
    /// next request with `Draining` and close. Call [`MemHost::drain`]
    /// afterwards to join; split so a test can observe the fail-fast
    /// client behavior before connection threads are reaped.
    pub fn begin_drain(&self) {
        self.draining.store(true, Ordering::Release);
    }

    /// Graceful drain, same semantics as [`NetServer::drain`].
    pub fn drain(&self) -> ServerStatsSnapshot {
        self.draining.store(true, Ordering::Release);
        let handles: Vec<JoinHandle<()>> = std::mem::take(&mut *self.conns.lock().unwrap());
        for h in handles {
            let _ = h.join();
        }
        self.stats.snapshot()
    }

    pub fn stats(&self) -> ServerStatsSnapshot {
        self.stats.snapshot()
    }

    /// Currently admitted in-flight requests for `tenant` (test
    /// introspection into the admission gate).
    pub fn gate_in_flight(&self, tenant: u32) -> usize {
        self.gate.in_flight(tenant)
    }

    /// Injected-fault counters (all zero when faults are disabled).
    pub fn fault_stats(&self) -> &FaultStats {
        &self.fault_stats
    }
}
