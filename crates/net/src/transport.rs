//! Byte-stream transports: real TCP sockets and a deterministic
//! fault-injecting in-memory pipe.
//!
//! The [`Transport`] trait is the seam the whole wire layer hangs off:
//! the frame codec, the server's connection loop, and the retrying
//! client all speak to it, so a test can swap real sockets for
//! [`MemTransport`] pipes — optionally wrapped in [`FaultTransport`],
//! which injects seeded connection resets, torn (prefix-only) writes,
//! byte-level short reads, and micro-delays, in the spirit of the
//! persist crate's fault-injecting `Vfs`.

use crate::NetError;
use std::collections::VecDeque;
use std::io::{Read as _, Write as _};
use std::net::TcpStream;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};
use xpl_util::SplitMix64;

/// A bidirectional byte stream with deadlines. All errors are typed;
/// implementations never panic on peer misbehavior.
pub trait Transport: Send {
    /// Write all of `bytes` (or fail typed — a peer-closed socket is
    /// [`NetError::PeerClosed`], never a panic or silent loss).
    fn send(&mut self, bytes: &[u8]) -> Result<(), NetError>;

    /// Read up to `buf.len()` bytes; `Ok(0)` means the peer closed its
    /// writing end cleanly.
    fn recv(&mut self, buf: &mut [u8]) -> Result<usize, NetError>;

    /// Deadline for each subsequent `recv` (None = block forever).
    fn set_read_deadline(&mut self, d: Option<Duration>) -> Result<(), NetError>;

    /// Deadline for each subsequent `send` (None = block forever).
    fn set_write_deadline(&mut self, d: Option<Duration>) -> Result<(), NetError>;

    /// Close both directions; subsequent peer reads see EOF/reset.
    fn shutdown(&mut self);
}

// ------------------------------------------------------------------ TCP

/// [`Transport`] over a real `std::net::TcpStream`.
///
/// SIGPIPE note: the Rust runtime ignores SIGPIPE on unix, so writing
/// to a socket the peer already closed returns `EPIPE`/`ECONNRESET` as
/// an `io::Error`, which [`NetError::from_io`] maps to
/// [`NetError::PeerClosed`] / [`NetError::Reset`] — the process never
/// dies from a vanished client.
pub struct TcpTransport {
    stream: TcpStream,
}

impl TcpTransport {
    pub fn new(stream: TcpStream) -> TcpTransport {
        // Request/response frames are small and latency-bound.
        let _ = stream.set_nodelay(true);
        TcpTransport { stream }
    }

    /// Dial a listening address.
    pub fn connect(addr: &std::net::SocketAddr) -> Result<TcpTransport, NetError> {
        TcpStream::connect(addr)
            .map(TcpTransport::new)
            .map_err(NetError::from_io)
    }
}

impl Transport for TcpTransport {
    fn send(&mut self, bytes: &[u8]) -> Result<(), NetError> {
        self.stream.write_all(bytes).map_err(NetError::from_io)
    }

    fn recv(&mut self, buf: &mut [u8]) -> Result<usize, NetError> {
        self.stream.read(buf).map_err(NetError::from_io)
    }

    fn set_read_deadline(&mut self, d: Option<Duration>) -> Result<(), NetError> {
        self.stream.set_read_timeout(d).map_err(NetError::from_io)
    }

    fn set_write_deadline(&mut self, d: Option<Duration>) -> Result<(), NetError> {
        self.stream.set_write_timeout(d).map_err(NetError::from_io)
    }

    fn shutdown(&mut self) {
        let _ = self.stream.shutdown(std::net::Shutdown::Both);
    }
}

// ------------------------------------------------------------- MemPipe

/// One direction of an in-memory duplex pipe.
struct PipeBuf {
    data: VecDeque<u8>,
    /// Writer hung up: readers drain what's left, then see EOF.
    tx_closed: bool,
    /// Reader hung up: writers get [`NetError::PeerClosed`].
    rx_closed: bool,
}

struct PipeDir {
    buf: Mutex<PipeBuf>,
    cond: Condvar,
}

impl PipeDir {
    fn new() -> Arc<PipeDir> {
        Arc::new(PipeDir {
            buf: Mutex::new(PipeBuf {
                data: VecDeque::new(),
                tx_closed: false,
                rx_closed: false,
            }),
            cond: Condvar::new(),
        })
    }

    fn write(&self, bytes: &[u8]) -> Result<(), NetError> {
        let mut b = self.buf.lock().unwrap();
        if b.rx_closed {
            return Err(NetError::PeerClosed);
        }
        if b.tx_closed {
            return Err(NetError::Reset);
        }
        b.data.extend(bytes);
        self.cond.notify_all();
        Ok(())
    }

    fn read(&self, buf: &mut [u8], deadline: Option<Duration>) -> Result<usize, NetError> {
        let start = Instant::now();
        let mut b = self.buf.lock().unwrap();
        loop {
            if !b.data.is_empty() {
                let n = buf.len().min(b.data.len());
                for slot in buf.iter_mut().take(n) {
                    *slot = b.data.pop_front().unwrap();
                }
                return Ok(n);
            }
            if b.tx_closed {
                return Ok(0); // clean EOF
            }
            match deadline {
                None => b = self.cond.wait(b).unwrap(),
                Some(d) => {
                    let elapsed = start.elapsed();
                    if elapsed >= d {
                        return Err(NetError::Timeout);
                    }
                    let (guard, _) = self.cond.wait_timeout(b, d - elapsed).unwrap();
                    b = guard;
                }
            }
        }
    }

    fn close(&self) {
        let mut b = self.buf.lock().unwrap();
        b.tx_closed = true;
        b.rx_closed = true;
        self.cond.notify_all();
    }
}

/// In-memory [`Transport`] endpoint; see [`mem_pair`].
pub struct MemTransport {
    /// Direction this end writes into.
    out: Arc<PipeDir>,
    /// Direction this end reads from.
    inn: Arc<PipeDir>,
    read_deadline: Option<Duration>,
}

/// A connected pair of in-memory transports (client end, server end).
/// Deterministic byte-stream semantics, deadline support via condvar
/// timeouts, EOF/PeerClosed on drop — everything the TCP transport
/// does, minus the kernel.
pub fn mem_pair() -> (MemTransport, MemTransport) {
    let a2b = PipeDir::new();
    let b2a = PipeDir::new();
    (
        MemTransport {
            out: a2b.clone(),
            inn: b2a.clone(),
            read_deadline: None,
        },
        MemTransport {
            out: b2a,
            inn: a2b,
            read_deadline: None,
        },
    )
}

impl Transport for MemTransport {
    fn send(&mut self, bytes: &[u8]) -> Result<(), NetError> {
        self.out.write(bytes)
    }

    fn recv(&mut self, buf: &mut [u8]) -> Result<usize, NetError> {
        if buf.is_empty() {
            return Ok(0);
        }
        self.inn.read(buf, self.read_deadline)
    }

    fn set_read_deadline(&mut self, d: Option<Duration>) -> Result<(), NetError> {
        self.read_deadline = d;
        Ok(())
    }

    fn set_write_deadline(&mut self, _d: Option<Duration>) -> Result<(), NetError> {
        Ok(()) // in-memory writes never block
    }

    fn shutdown(&mut self) {
        self.out.close();
        self.inn.close();
    }
}

impl Drop for MemTransport {
    fn drop(&mut self) {
        self.shutdown();
    }
}

// ------------------------------------------------------ FaultTransport

/// Per-256 injection rates for [`FaultTransport`]. A rate of 0 disables
/// that fault class; 256 fires on every opportunity.
///
/// Reset and torn-write rolls happen once per *frame-ish* unit — every
/// send, and the first recv of each read burst (the first read after a
/// send) — not on every byte-level operation. Otherwise a frame read
/// split into ~100 one-byte recvs by `short_read` would compound the
/// reset probability ~100×, and no retry budget survives that. Short
/// reads and delays are benign, so they stay per-operation.
#[derive(Clone, Copy, Debug)]
pub struct FaultConfig {
    pub seed: u64,
    /// Connection reset on a send or at the start of a read burst.
    pub reset_per_256: u32,
    /// Torn write: only a prefix of the buffer reaches the peer, then
    /// the connection dies (the peer sees a truncated frame).
    pub torn_write_per_256: u32,
    /// Short read: deliver at most one byte (byte-level delay of the
    /// stream; exercises every resume point in the frame reader).
    pub short_read_per_256: u32,
    /// Micro-delay before the operation.
    pub delay_per_256: u32,
    /// Max injected delay, nanoseconds.
    pub delay_max_ns: u64,
}

impl FaultConfig {
    /// No faults (pass-through).
    pub fn none(seed: u64) -> FaultConfig {
        FaultConfig {
            seed,
            reset_per_256: 0,
            torn_write_per_256: 0,
            short_read_per_256: 0,
            delay_per_256: 0,
            delay_max_ns: 0,
        }
    }

    /// A uniform storm: every fault class at `rate` per 256 ops.
    pub fn storm(seed: u64, rate: u32) -> FaultConfig {
        FaultConfig {
            seed,
            reset_per_256: rate,
            torn_write_per_256: rate,
            short_read_per_256: rate.saturating_mul(4).min(256),
            delay_per_256: rate,
            delay_max_ns: 200_000,
        }
    }

    pub fn is_none(&self) -> bool {
        self.reset_per_256 == 0
            && self.torn_write_per_256 == 0
            && self.short_read_per_256 == 0
            && self.delay_per_256 == 0
    }
}

/// Counters for injected faults, shared across connections.
#[derive(Debug, Default)]
pub struct FaultStats {
    pub resets: std::sync::atomic::AtomicU64,
    pub torn_writes: std::sync::atomic::AtomicU64,
    pub short_reads: std::sync::atomic::AtomicU64,
    pub delays: std::sync::atomic::AtomicU64,
}

impl FaultStats {
    fn bump(counter: &std::sync::atomic::AtomicU64) {
        counter.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    }
}

/// Wraps any transport and injects seeded faults. Each wrapped
/// connection draws its own SplitMix64 stream (derived from the config
/// seed and a connection label), so a given connection's fault schedule
/// is deterministic regardless of what other connections do.
pub struct FaultTransport {
    inner: Box<dyn Transport>,
    cfg: FaultConfig,
    rng: SplitMix64,
    stats: Arc<FaultStats>,
    /// A reset/torn fault poisons the connection permanently, like a
    /// real dead socket.
    dead: bool,
    /// Whether this read burst (recvs since the last send) already
    /// rolled for a reset — see [`FaultConfig`].
    burst_rolled: bool,
}

impl FaultTransport {
    pub fn new(
        inner: Box<dyn Transport>,
        cfg: FaultConfig,
        label: &str,
        stats: Arc<FaultStats>,
    ) -> FaultTransport {
        let rng = SplitMix64::new(cfg.seed).derive(label);
        FaultTransport {
            inner,
            cfg,
            rng,
            stats,
            dead: false,
            burst_rolled: false,
        }
    }

    fn roll(&mut self, per_256: u32) -> bool {
        per_256 > 0 && self.rng.next_below(256) < per_256 as u64
    }

    fn maybe_delay(&mut self) {
        if self.roll(self.cfg.delay_per_256) && self.cfg.delay_max_ns > 0 {
            let ns = self.rng.next_below(self.cfg.delay_max_ns);
            FaultStats::bump(&self.stats.delays);
            std::thread::sleep(Duration::from_nanos(ns));
        }
    }

    fn die(&mut self) {
        self.dead = true;
        self.inner.shutdown();
    }
}

impl Transport for FaultTransport {
    fn send(&mut self, bytes: &[u8]) -> Result<(), NetError> {
        if self.dead {
            return Err(NetError::Reset);
        }
        self.burst_rolled = false;
        self.maybe_delay();
        if self.roll(self.cfg.reset_per_256) {
            FaultStats::bump(&self.stats.resets);
            self.die();
            return Err(NetError::Reset);
        }
        if self.roll(self.cfg.torn_write_per_256) && bytes.len() > 1 {
            // A prefix reaches the peer (who will see a truncated
            // frame), then the connection dies under the writer.
            let cut = 1 + self.rng.next_below(bytes.len() as u64 - 1) as usize;
            FaultStats::bump(&self.stats.torn_writes);
            let _ = self.inner.send(&bytes[..cut]);
            self.die();
            return Err(NetError::Reset);
        }
        self.inner.send(bytes)
    }

    fn recv(&mut self, buf: &mut [u8]) -> Result<usize, NetError> {
        if self.dead {
            return Err(NetError::Reset);
        }
        self.maybe_delay();
        if !self.burst_rolled {
            self.burst_rolled = true;
            if self.roll(self.cfg.reset_per_256) {
                FaultStats::bump(&self.stats.resets);
                self.die();
                return Err(NetError::Reset);
            }
        }
        if self.roll(self.cfg.short_read_per_256) && buf.len() > 1 {
            FaultStats::bump(&self.stats.short_reads);
            return self.inner.recv(&mut buf[..1]);
        }
        self.inner.recv(buf)
    }

    fn set_read_deadline(&mut self, d: Option<Duration>) -> Result<(), NetError> {
        self.inner.set_read_deadline(d)
    }

    fn set_write_deadline(&mut self, d: Option<Duration>) -> Result<(), NetError> {
        self.inner.set_write_deadline(d)
    }

    fn shutdown(&mut self) {
        self.inner.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::{read_frame, write_frame, FrameKind, DEFAULT_MAX_FRAME};

    #[test]
    fn mem_pair_roundtrips_frames() {
        let (mut a, mut b) = mem_pair();
        write_frame(&mut a, FrameKind::Request, b"ping").unwrap();
        let f = read_frame(&mut b, DEFAULT_MAX_FRAME).unwrap().unwrap();
        assert_eq!(f.payload, b"ping");
        write_frame(&mut b, FrameKind::Response, b"pong").unwrap();
        let f = read_frame(&mut a, DEFAULT_MAX_FRAME).unwrap().unwrap();
        assert_eq!(f.payload, b"pong");
    }

    #[test]
    fn mem_close_is_clean_eof_at_boundary() {
        let (mut a, mut b) = mem_pair();
        write_frame(&mut a, FrameKind::Request, b"last").unwrap();
        a.shutdown();
        assert!(read_frame(&mut b, DEFAULT_MAX_FRAME).unwrap().is_some());
        assert!(read_frame(&mut b, DEFAULT_MAX_FRAME).unwrap().is_none());
        // Writing to a closed peer is typed, not a panic.
        assert!(matches!(
            write_frame(&mut b, FrameKind::Response, b"late"),
            Err(NetError::PeerClosed | NetError::Reset)
        ));
    }

    #[test]
    fn mem_read_deadline_expires() {
        let (mut a, _b) = mem_pair();
        a.set_read_deadline(Some(Duration::from_millis(10)))
            .unwrap();
        let mut buf = [0u8; 8];
        assert_eq!(a.recv(&mut buf), Err(NetError::Timeout));
    }

    #[test]
    fn torn_write_truncates_the_frame_for_the_peer() {
        let (a, mut b) = mem_pair();
        let stats = Arc::new(FaultStats::default());
        let mut cfg = FaultConfig::none(7);
        cfg.torn_write_per_256 = 256; // every write tears
        let mut faulty = FaultTransport::new(Box::new(a), cfg, "conn-0", stats.clone());
        let err = write_frame(&mut faulty, FrameKind::Request, b"payload-that-tears").unwrap_err();
        assert_eq!(err, NetError::Reset);
        assert_eq!(
            stats.torn_writes.load(std::sync::atomic::Ordering::Relaxed),
            1
        );
        // The peer sees a truncated frame (typed), never a panic.
        let got = read_frame(&mut b, DEFAULT_MAX_FRAME);
        assert!(
            matches!(got, Err(NetError::Truncated { .. }) | Ok(None)),
            "{got:?}"
        );
        // The faulty end is poisoned like a real dead socket.
        assert_eq!(faulty.send(b"more"), Err(NetError::Reset));
    }

    #[test]
    fn fault_schedule_is_seeded_and_deterministic() {
        let roll_outcomes = |seed: u64| -> Vec<bool> {
            let (a, _b) = mem_pair();
            let mut t = FaultTransport::new(
                Box::new(a),
                FaultConfig::storm(seed, 64),
                "conn-42",
                Arc::new(FaultStats::default()),
            );
            (0..64).map(|_| t.send(b"xx").is_err()).collect()
        };
        assert_eq!(roll_outcomes(1), roll_outcomes(1));
        assert_ne!(roll_outcomes(1), roll_outcomes(2));
    }

    #[test]
    fn short_reads_still_deliver_every_byte() {
        let (a, b) = mem_pair();
        let stats = Arc::new(FaultStats::default());
        let mut cfg = FaultConfig::none(3);
        cfg.short_read_per_256 = 256; // every read delivers one byte
        let mut writer: Box<dyn Transport> = Box::new(a);
        write_frame(&mut *writer, FrameKind::Request, b"byte-at-a-time").unwrap();
        let mut reader = FaultTransport::new(Box::new(b), cfg, "c", stats.clone());
        let f = read_frame(&mut reader, DEFAULT_MAX_FRAME).unwrap().unwrap();
        assert_eq!(f.payload, b"byte-at-a-time");
        assert!(stats.short_reads.load(std::sync::atomic::Ordering::Relaxed) > 0);
    }
}
