//! The retrying wire client.
//!
//! [`NetClient`] owns one logical connection (re-dialed through a
//! connector closure whenever the transport dies) and a deterministic
//! exponential-backoff-with-jitter retry policy. Transport faults
//! (resets, torn frames, deadline expiries) and typed `Overload`
//! responses are retried up to the budget; a `Draining` response fails
//! fast with [`NetError::Rejected`] — a drained server must never make
//! clients hang.

use crate::frame::{
    decode_response, encode_request, read_frame, write_frame, FrameKind, STATUS_DRAINING,
    STATUS_ERROR, STATUS_OK, STATUS_OVERLOAD,
};
use crate::server::WireConfig;
use crate::{NetError, Transport};
use std::time::Duration;
use xpl_util::SplitMix64;

/// Deterministic exponential backoff with jitter.
///
/// Attempt `n` (0-based) sleeps `floor(n) + jitter` where
/// `floor(n) = min(base_ns << n, max_ns)` and `jitter` is drawn
/// uniformly from `[0, floor(n)/2]` off a seeded SplitMix64 — so the
/// whole delay lies in `[floor(n), 1.5·floor(n)]`, and because
/// `1.5·floor(n) ≤ floor(n+1)` below the cap, the realized delays are
/// monotone non-decreasing until the cap. Fully reproducible given the
/// seed.
#[derive(Clone, Copy, Debug)]
pub struct BackoffPolicy {
    pub base_ns: u64,
    pub max_ns: u64,
    /// Total attempts (first try + retries).
    pub max_attempts: u32,
}

impl Default for BackoffPolicy {
    fn default() -> Self {
        BackoffPolicy {
            base_ns: 2_000_000,
            max_ns: 200_000_000,
            max_attempts: 16,
        }
    }
}

impl BackoffPolicy {
    /// Deterministic floor for attempt `n`: `min(base << n, max)`.
    pub fn floor_ns(&self, attempt: u32) -> u64 {
        self.base_ns
            .checked_shl(attempt)
            .map_or(self.max_ns, |v| v.min(self.max_ns))
            .max(1)
    }

    /// Delay for attempt `n`, drawing jitter from `rng`.
    pub fn delay_ns(&self, attempt: u32, rng: &mut SplitMix64) -> u64 {
        let floor = self.floor_ns(attempt);
        floor + rng.next_below(floor / 2 + 1)
    }

    /// The full retry schedule for a given seed — what a client with
    /// this seed will actually sleep, in order. For tests and
    /// introspection.
    pub fn schedule(&self, seed: u64) -> Vec<u64> {
        let mut rng = SplitMix64::new(seed).derive("backoff");
        (0..self.max_attempts.saturating_sub(1))
            .map(|a| self.delay_ns(a, &mut rng))
            .collect()
    }
}

/// Per-client accounting, readable after a run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ClientStats {
    /// Calls that ultimately returned a payload.
    pub served: u64,
    /// Extra attempts beyond the first, across all calls.
    pub retries: u64,
    /// Times the transport was torn down and re-dialed.
    pub reconnects: u64,
    /// Typed `Overload` responses received.
    pub overloads_seen: u64,
    /// Fail-fast `Draining` rejections received.
    pub rejected: u64,
}

/// Dials a fresh transport; called on first use and after any
/// transport-level failure.
pub type Connector = Box<dyn FnMut() -> Result<Box<dyn Transport>, NetError> + Send>;

/// A retrying request/response client bound to one tenant.
pub struct NetClient {
    connector: Connector,
    tenant: u32,
    cfg: WireConfig,
    backoff: BackoffPolicy,
    rng: SplitMix64,
    conn: Option<Box<dyn Transport>>,
    next_id: u64,
    pub stats: ClientStats,
}

impl NetClient {
    /// `seed` keys the jitter stream (per-client, so schedules are
    /// deterministic but decorrelated between clients).
    pub fn new(
        tenant: u32,
        cfg: WireConfig,
        backoff: BackoffPolicy,
        seed: u64,
        connector: Connector,
    ) -> NetClient {
        NetClient {
            connector,
            tenant,
            cfg,
            backoff,
            rng: SplitMix64::new(seed).derive("backoff"),
            conn: None,
            next_id: 0,
            stats: ClientStats::default(),
        }
    }

    /// A client dialing a TCP address.
    pub fn tcp(
        addr: std::net::SocketAddr,
        tenant: u32,
        cfg: WireConfig,
        backoff: BackoffPolicy,
        seed: u64,
    ) -> NetClient {
        NetClient::new(
            tenant,
            cfg,
            backoff,
            seed,
            Box::new(move || {
                crate::transport::TcpTransport::connect(&addr)
                    .map(|t| Box::new(t) as Box<dyn Transport>)
            }),
        )
    }

    fn ensure_conn(&mut self) -> Result<&mut Box<dyn Transport>, NetError> {
        if self.conn.is_none() {
            let mut t = (self.connector)()?;
            t.set_read_deadline(Some(self.cfg.read_deadline))?;
            t.set_write_deadline(Some(self.cfg.write_deadline))?;
            write_frame(&mut *t, FrameKind::Hello, &self.tenant.to_le_bytes())?;
            self.conn = Some(t);
        }
        Ok(self.conn.as_mut().unwrap())
    }

    fn attempt(&mut self, id: u64, body: &[u8]) -> Result<Vec<u8>, NetError> {
        self.attempt_kind(FrameKind::Request, id, body)
    }

    fn attempt_kind(&mut self, kind: FrameKind, id: u64, body: &[u8]) -> Result<Vec<u8>, NetError> {
        let max_frame = self.cfg.max_frame;
        let t = self.ensure_conn()?;
        write_frame(&mut **t, kind, &encode_request(id, body))?;
        loop {
            let frame = read_frame(&mut **t, max_frame)?.ok_or(NetError::PeerClosed)?;
            if frame.kind != FrameKind::Response {
                return Err(NetError::Malformed(format!(
                    "expected a response frame, got {:?}",
                    frame.kind
                )));
            }
            let (rid, status, rbody) = decode_response(&frame.payload)?;
            if rid != id {
                continue; // stale response from an earlier request id
            }
            return match status {
                STATUS_OK => Ok(rbody.to_vec()),
                STATUS_OVERLOAD => Err(NetError::Overload { in_flight: 0 }),
                STATUS_DRAINING => Err(NetError::Rejected(
                    String::from_utf8_lossy(rbody).into_owned(),
                )),
                STATUS_ERROR => Err(NetError::Service(
                    String::from_utf8_lossy(rbody).into_owned(),
                )),
                other => Err(NetError::Malformed(format!(
                    "unknown response status {other}"
                ))),
            };
        }
    }

    /// Issue one request, retrying transport faults and `Overload` with
    /// deterministic backoff, reconnecting as needed. Fails fast on
    /// `Draining` ([`NetError::Rejected`]) and service errors; returns
    /// [`NetError::Exhausted`] when the attempt budget runs out.
    pub fn call(&mut self, body: &[u8]) -> Result<Vec<u8>, NetError> {
        let id = self.next_id;
        self.next_id += 1;
        let attempts = self.backoff.max_attempts.max(1);
        for attempt in 0..attempts {
            if attempt > 0 {
                self.stats.retries += 1;
                let delay = self.backoff.delay_ns(attempt - 1, &mut self.rng);
                std::thread::sleep(Duration::from_nanos(delay));
            }
            match self.attempt(id, body) {
                Ok(reply) => {
                    self.stats.served += 1;
                    return Ok(reply);
                }
                Err(NetError::Overload { .. }) => {
                    // Typed backpressure: the connection is healthy,
                    // only the tenant's bound was full. Back off, retry.
                    self.stats.overloads_seen += 1;
                }
                Err(e @ NetError::Rejected(_)) => {
                    self.stats.rejected += 1;
                    return Err(e);
                }
                Err(e @ (NetError::Service(_) | NetError::Malformed(_))) => return Err(e),
                Err(e @ NetError::FrameTooLarge { .. }) => return Err(e),
                Err(_transport) => {
                    // Reset / torn frame / deadline / dial failure: tear
                    // the connection down and re-dial after backoff.
                    if self.conn.take().is_some() {
                        self.stats.reconnects += 1;
                    }
                }
            }
        }
        Err(NetError::Exhausted { attempts })
    }

    /// Fetch the server's metrics snapshot (the canonical registry JSON)
    /// over the wire via a [`FrameKind::Stats`] frame. The server answers
    /// these before its draining check and outside the admission gate, so
    /// this works mid-storm and mid-drain; transport faults are retried
    /// with the same backoff as [`NetClient::call`]. Returns
    /// [`NetError::Service`] when the server has no registry attached.
    pub fn stats_snapshot(&mut self) -> Result<Vec<u8>, NetError> {
        let id = self.next_id;
        self.next_id += 1;
        let attempts = self.backoff.max_attempts.max(1);
        for attempt in 0..attempts {
            if attempt > 0 {
                self.stats.retries += 1;
                let delay = self.backoff.delay_ns(attempt - 1, &mut self.rng);
                std::thread::sleep(Duration::from_nanos(delay));
            }
            match self.attempt_kind(FrameKind::Stats, id, &[]) {
                Ok(reply) => {
                    self.stats.served += 1;
                    return Ok(reply);
                }
                Err(e @ (NetError::Service(_) | NetError::Malformed(_))) => return Err(e),
                Err(e @ NetError::FrameTooLarge { .. }) => return Err(e),
                Err(e @ (NetError::Rejected(_) | NetError::Overload { .. })) => {
                    // Stats bypasses the gate and the drain check; these
                    // statuses would mean a protocol bug on the far side.
                    return Err(e);
                }
                Err(_transport) => {
                    if self.conn.take().is_some() {
                        self.stats.reconnects += 1;
                    }
                }
            }
        }
        Err(NetError::Exhausted { attempts })
    }

    /// Close the connection (clean FIN; the server sees EOF at a frame
    /// boundary).
    pub fn close(&mut self) {
        if let Some(mut t) = self.conn.take() {
            t.shutdown();
        }
    }
}

impl Drop for NetClient {
    fn drop(&mut self) {
        self.close();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_floors_double_then_cap() {
        let p = BackoffPolicy {
            base_ns: 1_000,
            max_ns: 16_000,
            max_attempts: 10,
        };
        let floors: Vec<u64> = (0..8).map(|a| p.floor_ns(a)).collect();
        assert_eq!(
            floors,
            vec![1_000, 2_000, 4_000, 8_000, 16_000, 16_000, 16_000, 16_000]
        );
    }

    #[test]
    fn backoff_schedule_is_deterministic_and_monotone_below_cap() {
        let p = BackoffPolicy {
            base_ns: 1_000,
            max_ns: 1 << 40,
            max_attempts: 12,
        };
        let a = p.schedule(77);
        let b = p.schedule(77);
        assert_eq!(a, b);
        assert_ne!(a, p.schedule(78));
        assert_eq!(a.len(), 11);
        for (n, &d) in a.iter().enumerate() {
            let floor = p.floor_ns(n as u32);
            assert!(
                d >= floor && d <= floor + floor / 2,
                "attempt {n}: {d} vs floor {floor}"
            );
        }
        assert!(a.windows(2).all(|w| w[0] <= w[1]), "not monotone: {a:?}");
    }

    #[test]
    fn huge_shift_saturates_at_cap() {
        let p = BackoffPolicy {
            base_ns: 1_000,
            max_ns: 5_000,
            max_attempts: 80,
        };
        assert_eq!(p.floor_ns(70), 5_000); // checked_shl overflow -> cap
    }
}
