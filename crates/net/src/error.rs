//! Typed wire-layer errors.
//!
//! Nothing in this crate panics on hostile or unlucky input: a peer
//! that vanishes mid-write, a forged frame header claiming a
//! gigabyte payload, a stream cut inside a length field — every one of
//! those surfaces as a variant below so callers can decide to retry,
//! evict, or reject. `PartialEq` so tests can pin exact outcomes.

use std::fmt;

/// Every way the wire can fail.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum NetError {
    /// The peer closed its end (clean FIN or `EPIPE`/`ECONNRESET` on
    /// write). On unix this is SIGPIPE-safe: the Rust runtime ignores
    /// SIGPIPE, so a write to a closed socket returns `BrokenPipe`
    /// instead of killing the process, and we map it here.
    PeerClosed,
    /// The connection was reset (by the peer, or by fault injection).
    Reset,
    /// A read or write deadline expired.
    Timeout,
    /// The stream ended inside a frame: `have` bytes where `needed`
    /// were required to finish the header or payload.
    Truncated { needed: usize, have: usize },
    /// The frame did not start with the protocol magic.
    BadMagic([u8; 4]),
    /// The header's kind byte is not a known frame kind.
    BadKind(u8),
    /// The header CRC did not match — a corrupt or forged header is
    /// rejected *before* its length field is trusted for allocation.
    BadHeaderCrc { expected: u32, actual: u32 },
    /// The payload CRC did not match.
    BadPayloadCrc { expected: u32, actual: u32 },
    /// The header's length field exceeds the configured maximum frame
    /// size. Rejected before allocating.
    FrameTooLarge { len: u32, max: u32 },
    /// A request or response payload was malformed (too short, bad
    /// status byte, unexpected frame kind).
    Malformed(String),
    /// The server's per-tenant admission bound was full. Retryable
    /// after backoff; the connection stays healthy.
    Overload { in_flight: u32 },
    /// The server is draining: the request was not admitted and must
    /// not be retried against this server. Clients fail fast.
    Rejected(String),
    /// The service itself failed (status `Error` on the wire).
    Service(String),
    /// The retry budget ran out without a successful response.
    Exhausted { attempts: u32 },
    /// Anything else the OS reported.
    Io(String),
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::PeerClosed => write!(f, "peer closed the connection"),
            NetError::Reset => write!(f, "connection reset"),
            NetError::Timeout => write!(f, "deadline expired"),
            NetError::Truncated { needed, have } => {
                write!(f, "truncated frame: need {needed} bytes, have {have}")
            }
            NetError::BadMagic(m) => write!(f, "bad frame magic {m:02x?}"),
            NetError::BadKind(k) => write!(f, "unknown frame kind {k:#04x}"),
            NetError::BadHeaderCrc { expected, actual } => {
                write!(
                    f,
                    "header CRC mismatch: expected {expected:#010x}, got {actual:#010x}"
                )
            }
            NetError::BadPayloadCrc { expected, actual } => {
                write!(
                    f,
                    "payload CRC mismatch: expected {expected:#010x}, got {actual:#010x}"
                )
            }
            NetError::FrameTooLarge { len, max } => {
                write!(f, "frame payload of {len} bytes exceeds max {max}")
            }
            NetError::Malformed(msg) => write!(f, "malformed message: {msg}"),
            NetError::Overload { in_flight } => {
                write!(
                    f,
                    "overloaded: {in_flight} requests already in flight for this tenant"
                )
            }
            NetError::Rejected(msg) => write!(f, "rejected: {msg}"),
            NetError::Service(msg) => write!(f, "service error: {msg}"),
            NetError::Exhausted { attempts } => {
                write!(f, "retry budget exhausted after {attempts} attempts")
            }
            NetError::Io(msg) => write!(f, "io error: {msg}"),
        }
    }
}

impl std::error::Error for NetError {}

impl NetError {
    /// Map an OS error to the typed taxonomy. `BrokenPipe` (EPIPE) and
    /// the reset family become [`NetError::PeerClosed`] /
    /// [`NetError::Reset`]; timeouts become [`NetError::Timeout`].
    pub fn from_io(e: std::io::Error) -> NetError {
        use std::io::ErrorKind::*;
        match e.kind() {
            BrokenPipe => NetError::PeerClosed,
            ConnectionReset | ConnectionAborted => NetError::Reset,
            UnexpectedEof => NetError::PeerClosed,
            WouldBlock | TimedOut => NetError::Timeout,
            _ => NetError::Io(e.to_string()),
        }
    }

    /// Transport-level failures a client may retry on a fresh
    /// connection (as opposed to protocol-level rejections, which are
    /// final).
    pub fn is_retryable(&self) -> bool {
        matches!(
            self,
            NetError::PeerClosed
                | NetError::Reset
                | NetError::Timeout
                | NetError::Truncated { .. }
                | NetError::BadHeaderCrc { .. }
                | NetError::BadPayloadCrc { .. }
        )
    }
}
