//! Serve over the wire, survive the wire.
//!
//! `xpl-net` puts a real transport in front of the registry: a small
//! length-prefixed, CRC-framed request/response protocol (see
//! [`frame`]) spoken over anything implementing [`Transport`] — real
//! `std::net` TCP sockets, or a deterministic fault-injecting in-memory
//! pipe (seeded connection resets, torn writes, byte-level delays,
//! truncated frames) in the spirit of the persist crate's
//! fault-injecting `Vfs`. The robustness contract, end to end:
//!
//! * **Typed failure, never silent loss.** A vanished peer is
//!   [`NetError::PeerClosed`] (SIGPIPE-safe), a forged or corrupt frame
//!   header is rejected before allocation, a full tenant queue is a
//!   typed `Overload` wire response — never a dropped connection, never
//!   a panic.
//! * **Deadlines everywhere.** Every read and write is bounded; a
//!   stalled client is evicted, a stalled server turns into a typed
//!   timeout the client retries against.
//! * **Deterministic retry.** Exponential backoff with seeded jitter
//!   ([`BackoffPolicy`]): bounded attempts, monotone delays,
//!   reproducible schedules.
//! * **Graceful drain.** Shutdown stops accepting, finishes in-flight
//!   requests, answers stragglers with `Draining` (clients fail fast
//!   with [`NetError::Rejected`]), flushes, then closes.
//!
//! The server maps per-connection tenants onto the registry's
//! [`xpl_registry::AdmissionGate`]; `xpl-bench`'s `repro serve --net`
//! drives the whole `ServeSchedule` through it under the same
//! differential digest oracle as the in-process run.

mod client;
mod error;
pub mod frame;
mod server;
mod transport;

pub use client::{BackoffPolicy, ClientStats, Connector, NetClient};
pub use error::NetError;
pub use frame::{Frame, FrameKind, DEFAULT_MAX_FRAME, HEADER_LEN, TRAILER_LEN};
pub use server::{
    serve_connection, MemHost, NetServer, ServerStats, ServerStatsSnapshot, WireConfig, WireService,
};
pub use transport::{
    mem_pair, FaultConfig, FaultStats, FaultTransport, MemTransport, TcpTransport, Transport,
};
