//! Similarity and compatibility metrics (§III-E/F/G).

use crate::graph::{PkgVertex, SemanticGraph};
use xpl_util::FxHashMap;

/// Package similarity `simP`: product of per-attribute similarities.
/// Different names → 0 (unmatched). Same name: version similarity ×
/// architecture similarity. The paper requires `simP = 1` for semantic
/// compatibility, i.e. identical version and compatible architecture.
pub fn sim_p(a: &PkgVertex, b: &PkgVertex) -> f64 {
    if a.name != b.name {
        return 0.0;
    }
    version_similarity(&a.version, &b.version) * a.arch.similarity(b.arch)
}

/// Graded version similarity: 1 for equal, decaying with how early the
/// versions diverge (same upstream > same major > different).
fn version_similarity(a: &xpl_pkg::Version, b: &xpl_pkg::Version) -> f64 {
    if a == b {
        return 1.0;
    }
    if a.epoch != b.epoch {
        return 0.2;
    }
    if a.upstream == b.upstream {
        // Same upstream, different revision — nearly identical.
        return 0.9;
    }
    let major =
        |v: &xpl_pkg::Version| -> String { v.upstream.split('.').next().unwrap_or("").to_string() };
    if major(a) == major(b) {
        0.6
    } else {
        0.3
    }
}

/// Size similarity of a matched pair (§III-F): the larger of the two
/// sizes, normalized by the largest package across both graphs.
pub fn sim_size(a: &PkgVertex, b: &PkgVertex, max_size: u64) -> f64 {
    if max_size == 0 {
        return 0.0;
    }
    a.size.max(b.size) as f64 / max_size as f64
}

/// The VMI semantic similarity `SimG` (§III-F): `simBI` times the
/// size-weighted matched mass over the size-weighted union mass.
pub fn sim_g(g1: &SemanticGraph, g2: &SemanticGraph) -> f64 {
    let bi = g1.base.similarity(&g2.base);
    if bi == 0.0 {
        return 0.0;
    }
    let max_size = g1
        .vertices
        .iter()
        .chain(g2.vertices.iter())
        .map(|v| v.size)
        .max()
        .unwrap_or(0);
    if max_size == 0 {
        return bi; // two empty graphs: degenerate but defined
    }

    let by_name: FxHashMap<_, &PkgVertex> = g2.vertices.iter().map(|v| (v.name, v)).collect();

    // Numerator: matched pairs (name equality), weighted.
    let mut matched = 0.0;
    for v1 in &g1.vertices {
        if let Some(v2) = by_name.get(&v1.name) {
            matched += sim_size(v1, v2, max_size) * sim_p(v1, v2);
        }
    }

    // Denominator: union by identity (name, version, arch). When the same
    // identity appears in both graphs, weigh it once by the *larger* size
    // — mirroring simsize's max() — so the matched mass can never exceed
    // the union mass and the metric stays symmetric and ≤ 1 even for
    // degenerate inputs where equal identities carry different sizes.
    let mut union_sizes: FxHashMap<(xpl_util::IStr, String), u64> = FxHashMap::default();
    for v in g1.vertices.iter().chain(g2.vertices.iter()) {
        let key = (v.name, format!("{}/{}", v.version, v.arch));
        let entry = union_sizes.entry(key).or_insert(0);
        *entry = (*entry).max(v.size);
    }
    let union_mass: f64 = union_sizes
        .values()
        .map(|&s| s as f64 / max_size as f64)
        .sum();
    if union_mass == 0.0 {
        return bi;
    }
    bi * (matched / union_mass)
}

/// Semantic compatibility (§III-G): the product of `simP` over pairs of
/// packages with the same name between a base-image subgraph and a
/// primary-package subgraph. 1.0 ⇒ installable together; < 1 ⇒
/// incompatible (e.g. the primary closure pins a different version of a
/// package the base provides).
pub fn compatibility(base_sub: &SemanticGraph, primary_sub: &SemanticGraph) -> f64 {
    let mut c = 1.0;
    for pv in &primary_sub.vertices {
        if let Some(bv) = base_sub.vertex_by_name(pv.name) {
            c *= sim_p(bv, pv);
        }
    }
    c
}

/// Pick the most similar graph among `candidates` (rayon-parallel: this
/// is the hot sweep the master-graph design accelerates, and with masters
/// it is still worth parallelizing across the handful of keys).
pub fn most_similar(target: &SemanticGraph, candidates: &[SemanticGraph]) -> Option<(usize, f64)> {
    use rayon::prelude::*;
    candidates
        .par_iter()
        .enumerate()
        .map(|(i, g)| (i, sim_g(target, g)))
        .max_by(|a, b| a.1.total_cmp(&b.1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::PkgRole;
    use xpl_pkg::{Arch, BaseImageAttrs, PackageId, Version};
    use xpl_util::IStr;

    fn vx(name: &str, version: &str, size: u64, role: PkgRole) -> PkgVertex {
        PkgVertex {
            pkg: PackageId(0),
            name: IStr::new(name),
            version: Version::parse(version),
            arch: Arch::Amd64,
            size,
            role,
        }
    }

    fn graph(name: &str, vs: Vec<PkgVertex>) -> SemanticGraph {
        SemanticGraph::from_parts(
            name,
            BaseImageAttrs::ubuntu("16.04", Arch::Amd64),
            vs,
            vec![],
        )
    }

    #[test]
    fn sim_p_name_gate() {
        let a = vx("redis", "6.0", 100, PkgRole::Primary);
        let b = vx("nginx", "6.0", 100, PkgRole::Primary);
        assert_eq!(sim_p(&a, &b), 0.0);
        assert_eq!(sim_p(&a, &a.clone()), 1.0);
    }

    #[test]
    fn sim_p_version_grades() {
        let base = vx("redis", "6.0.1-1", 100, PkgRole::Primary);
        let same = vx("redis", "6.0.1-1", 100, PkgRole::Primary);
        let rev = vx("redis", "6.0.1-2", 100, PkgRole::Primary);
        let minor = vx("redis", "6.1.0", 100, PkgRole::Primary);
        let major = vx("redis", "7.0", 100, PkgRole::Primary);
        assert_eq!(sim_p(&base, &same), 1.0);
        assert!(sim_p(&base, &rev) > sim_p(&base, &minor));
        assert!(sim_p(&base, &minor) > sim_p(&base, &major));
        assert!(sim_p(&base, &major) > 0.0);
    }

    #[test]
    fn identical_graphs_similarity_one() {
        let g = graph(
            "a",
            vec![
                vx("libc6", "2.23", 1800, PkgRole::BaseMember),
                vx("redis", "6.0", 400, PkgRole::Primary),
            ],
        );
        let s = sim_g(&g, &g.clone());
        assert!((s - 1.0).abs() < 1e-9, "{s}");
    }

    #[test]
    fn disjoint_packages_similarity_zero() {
        let a = graph("a", vec![vx("redis", "6.0", 400, PkgRole::Primary)]);
        let b = graph("b", vec![vx("nginx", "1.18", 300, PkgRole::Primary)]);
        assert_eq!(sim_g(&a, &b), 0.0);
    }

    #[test]
    fn different_base_zeroes_similarity() {
        let a = graph("a", vec![vx("redis", "6.0", 400, PkgRole::Primary)]);
        let mut b = a.clone();
        b.base = BaseImageAttrs::ubuntu("18.04", Arch::Amd64);
        assert_eq!(sim_g(&a, &b), 0.0);
    }

    #[test]
    fn shared_base_heavy_overlap_high_similarity() {
        // Mirrors Table II's Redis row (0.97): image with one small
        // primary vs. master covering the same big base.
        let mut base_pkgs: Vec<PkgVertex> = (0..50)
            .map(|i| vx(&format!("base-{i}"), "1.0", 1000, PkgRole::BaseMember))
            .collect();
        let master = graph("master", base_pkgs.clone());
        base_pkgs.push(vx("redis", "6.0", 300, PkgRole::Primary));
        let redis = graph("redis", base_pkgs);
        let s = sim_g(&redis, &master);
        assert!(s > 0.9, "expected Redis-like high similarity, got {s}");
    }

    #[test]
    fn big_unique_packages_low_similarity() {
        // Mirrors Table II's MongoDB row (0.15): large unique payload.
        let base: Vec<PkgVertex> = (0..10)
            .map(|i| vx(&format!("base-{i}"), "1.0", 200, PkgRole::BaseMember))
            .collect();
        let master = graph("master", base.clone());
        let mut mongo_v = base;
        mongo_v.push(vx("mongodb", "3.6", 9000, PkgRole::Primary));
        let mongo = graph("mongo", mongo_v);
        let s = sim_g(&mongo, &master);
        assert!(s < 0.4, "expected MongoDB-like low similarity, got {s}");
    }

    #[test]
    fn sim_g_symmetric() {
        let a = graph(
            "a",
            vec![
                vx("libc6", "2.23", 1800, PkgRole::BaseMember),
                vx("redis", "6.0", 400, PkgRole::Primary),
            ],
        );
        let b = graph(
            "b",
            vec![
                vx("libc6", "2.23", 1800, PkgRole::BaseMember),
                vx("nginx", "1.18", 350, PkgRole::Primary),
            ],
        );
        assert!((sim_g(&a, &b) - sim_g(&b, &a)).abs() < 1e-12);
    }

    #[test]
    fn version_mismatch_discounts_similarity() {
        let a = graph("a", vec![vx("redis", "6.0", 400, PkgRole::Primary)]);
        let b_same = graph("b", vec![vx("redis", "6.0", 400, PkgRole::Primary)]);
        let b_diff = graph("b", vec![vx("redis", "7.0", 400, PkgRole::Primary)]);
        assert!(sim_g(&a, &b_same) > sim_g(&a, &b_diff));
    }

    #[test]
    fn compatibility_empty_intersection_is_one() {
        let base = graph("base", vec![vx("libc6", "2.23", 1800, PkgRole::BaseMember)]);
        let prim = graph("prim", vec![vx("redis", "6.0", 400, PkgRole::Primary)]);
        assert_eq!(compatibility(&base, &prim), 1.0);
    }

    #[test]
    fn compatibility_same_version_one_different_below() {
        let base = graph(
            "base",
            vec![vx("libssl", "1.0.2", 300, PkgRole::BaseMember)],
        );
        let prim_ok = graph("p1", vec![vx("libssl", "1.0.2", 300, PkgRole::Dependency)]);
        let prim_bad = graph("p2", vec![vx("libssl", "1.1.0", 300, PkgRole::Dependency)]);
        assert_eq!(compatibility(&base, &prim_ok), 1.0);
        assert!(compatibility(&base, &prim_bad) < 1.0);
    }

    #[test]
    fn most_similar_finds_best() {
        let target = graph("t", vec![vx("redis", "6.0", 400, PkgRole::Primary)]);
        let candidates = vec![
            graph("c0", vec![vx("nginx", "1.18", 300, PkgRole::Primary)]),
            graph("c1", vec![vx("redis", "6.0", 400, PkgRole::Primary)]),
            graph("c2", vec![vx("redis", "7.0", 400, PkgRole::Primary)]),
        ];
        let (idx, s) = most_similar(&target, &candidates).unwrap();
        assert_eq!(idx, 1);
        assert!((s - 1.0).abs() < 1e-9);
        assert!(most_similar(&target, &[]).is_none());
    }
}
