//! `xpl-semgraph` — VMI semantic graphs, similarity metrics and master
//! graphs (paper §III).
//!
//! A VMI's semantic graph `G_I = (V_I, E_I)` has the base image, primary
//! packages and dependency packages as vertices and dependency relations
//! as edges (§III-B, Figure 1 — including cyclic dependencies such as
//! `libc6 ⇄ perl-base ⇄ dpkg`). From it we extract the base-image subgraph
//! `G_I[BI]` and primary-package subgraph `G_I[PS]`, compute similarity
//! (`simBI`, `simP`, `simsize`, `SimG`) and semantic compatibility, and
//! merge compatible images into per-(type, distro, ver, arch) master
//! graphs (§III-H) that make similarity computation O(#masters) instead of
//! O(#images).
//!
//! **Interpretation note (documented in DESIGN.md §5):** the paper's SimG
//! denominator "union of all packages in both VMIs" is read as the
//! size-normalized union mass Σ_{P∈V1∪V2} simsize(P,P); the numerator sums
//! over name-matched pairs. This makes SimG a size-weighted Jaccard index
//! ("intersection over union", as the text says) with SimG(G,G) = 1.

pub mod graph;
pub mod master;
pub mod similarity;

pub use graph::{PkgRole, PkgVertex, SemanticGraph};
pub use master::{MasterGraph, MasterKey};
pub use similarity::{compatibility, sim_g, sim_p, sim_size};
