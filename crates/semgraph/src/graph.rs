//! The semantic graph and its subgraphs.

use xpl_pkg::{Arch, BaseImageAttrs, Catalog, PackageId, Version};
use xpl_util::{FxHashMap, FxHashSet, IStr};

/// Why a package vertex is in the graph.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PkgRole {
    /// User-requested primary package (`PS`).
    Primary,
    /// Dependency of a primary package (`DS`).
    Dependency,
    /// Member of the base install.
    BaseMember,
}

/// A package vertex: the semantic attributes of §III-C plus installed
/// size (materialized bytes) for the `simsize` weighting.
#[derive(Clone, Debug)]
pub struct PkgVertex {
    pub pkg: PackageId,
    pub name: IStr,
    pub version: Version,
    pub arch: Arch,
    /// Installed size, materialized bytes.
    pub size: u64,
    pub role: PkgRole,
}

impl PkgVertex {
    pub fn from_catalog(catalog: &Catalog, id: PackageId, role: PkgRole) -> Self {
        let m = catalog.get(id);
        PkgVertex {
            pkg: id,
            name: m.name,
            version: m.version.clone(),
            arch: m.arch,
            size: m.installed_size,
            role,
        }
    }

    /// Identity triple used for union-by-identity in SimG.
    pub fn identity(&self) -> (IStr, &Version, Arch) {
        (self.name, &self.version, self.arch)
    }
}

/// The VMI semantic graph.
#[derive(Clone)]
pub struct SemanticGraph {
    /// Image name (for diagnostics and master-graph membership lists).
    pub image: String,
    pub base: BaseImageAttrs,
    pub vertices: Vec<PkgVertex>,
    /// Dependency edges between vertices (indices into `vertices`).
    /// Cycles are legal (§III-B).
    pub edges: Vec<(u32, u32)>,
    by_name: FxHashMap<IStr, u32>,
}

impl SemanticGraph {
    /// Build a graph from explicit parts (used by tests and the master-
    /// graph machinery).
    pub fn from_parts(
        image: &str,
        base: BaseImageAttrs,
        vertices: Vec<PkgVertex>,
        edges: Vec<(u32, u32)>,
    ) -> Self {
        let by_name = vertices
            .iter()
            .enumerate()
            .map(|(i, v)| (v.name, i as u32))
            .collect();
        SemanticGraph {
            image: image.to_string(),
            base,
            vertices,
            edges,
            by_name,
        }
    }

    /// Construct the semantic graph of an image: vertices for every
    /// installed package, edges from the catalog's dependency
    /// declarations.
    ///
    /// Role precedence: a package explicitly requested is `Primary`; a
    /// package reachable from `base_roots` (the base install) is
    /// `BaseMember` *even if a primary also depends on it* — the base
    /// provides it (Algorithm 3 line 7 skips such packages at assembly);
    /// remaining packages in the primary closure are `Dependency`.
    pub fn of_image(
        catalog: &Catalog,
        image: &str,
        base: BaseImageAttrs,
        installed: &[PackageId],
        primary: &[PackageId],
        base_roots: &[PackageId],
    ) -> SemanticGraph {
        let primary_set: FxHashSet<PackageId> = primary.iter().copied().collect();
        let base_closure: FxHashSet<IStr> = catalog
            .install_closure(base_roots, base.arch)
            .map(|ids| ids.into_iter().map(|id| catalog.get(id).name).collect())
            .unwrap_or_default();

        let mut vertices = Vec::with_capacity(installed.len());
        for &id in installed {
            let name = catalog.get(id).name;
            let role = if primary_set.contains(&id) {
                PkgRole::Primary
            } else if base_closure.contains(&name) {
                PkgRole::BaseMember
            } else {
                PkgRole::Dependency
            };
            vertices.push(PkgVertex::from_catalog(catalog, id, role));
        }

        let by_name: FxHashMap<IStr, u32> = vertices
            .iter()
            .enumerate()
            .map(|(i, v)| (v.name, i as u32))
            .collect();
        let mut edges = Vec::new();
        for (i, v) in vertices.iter().enumerate() {
            for dep in &catalog.get(v.pkg).depends {
                if let Some(&j) = by_name.get(&dep.name) {
                    edges.push((i as u32, j));
                }
            }
        }
        SemanticGraph {
            image: image.to_string(),
            base,
            vertices,
            edges,
            by_name,
        }
    }

    pub fn vertex_by_name(&self, name: IStr) -> Option<&PkgVertex> {
        self.by_name.get(&name).map(|&i| &self.vertices[i as usize])
    }

    pub fn package_count(&self) -> usize {
        self.vertices.len()
    }

    /// Total installed bytes across vertices (materialized).
    pub fn total_size(&self) -> u64 {
        self.vertices.iter().map(|v| v.size).sum()
    }

    /// The base-image subgraph `G_I[BI]`: base-member vertices and edges
    /// among them.
    pub fn base_subgraph(&self) -> SemanticGraph {
        self.filtered(&format!("{}[BI]", self.image), |v| {
            v.role == PkgRole::BaseMember
        })
    }

    /// The primary-package subgraph `G_I[PS]`: primary vertices plus their
    /// dependency vertices, and edges among them.
    pub fn primary_subgraph(&self) -> SemanticGraph {
        self.filtered(&format!("{}[PS]", self.image), |v| {
            matches!(v.role, PkgRole::Primary | PkgRole::Dependency)
        })
    }

    /// Keep only vertices satisfying `keep`, remapping edges.
    pub fn filtered(&self, name: &str, keep: impl Fn(&PkgVertex) -> bool) -> SemanticGraph {
        let mut map = vec![u32::MAX; self.vertices.len()];
        let mut vertices = Vec::new();
        for (i, v) in self.vertices.iter().enumerate() {
            if keep(v) {
                map[i] = vertices.len() as u32;
                vertices.push(v.clone());
            }
        }
        let edges = self
            .edges
            .iter()
            .filter_map(|&(a, b)| {
                let (na, nb) = (map[a as usize], map[b as usize]);
                (na != u32::MAX && nb != u32::MAX).then_some((na, nb))
            })
            .collect();
        SemanticGraph::from_parts(name, self.base.clone(), vertices, edges)
    }

    /// Extract the subgraph of one package and its reachable dependencies
    /// (Algorithm 1 line 25 / Algorithm 2 line 9 `extractSubGraph(G, P)`).
    pub fn package_closure_subgraph(&self, root: IStr) -> Option<SemanticGraph> {
        let start = *self.by_name.get(&root)?;
        let mut reach: FxHashSet<u32> = FxHashSet::default();
        let mut stack = vec![start];
        while let Some(i) = stack.pop() {
            if !reach.insert(i) {
                continue;
            }
            for &(a, b) in &self.edges {
                if a == i && !reach.contains(&b) {
                    stack.push(b);
                }
            }
        }
        Some(self.filtered(&format!("{}[{}]", self.image, root), |v| {
            self.by_name.get(&v.name).is_some_and(|i| reach.contains(i))
        }))
    }

    /// Does the graph contain a dependency cycle? (Fig. 1 shows cycles are
    /// expected, so this is a diagnostic, not a validation failure.)
    pub fn has_cycle(&self) -> bool {
        // Kahn's algorithm: cycle iff not all vertices drain.
        let n = self.vertices.len();
        let mut indeg = vec![0usize; n];
        for &(_, b) in &self.edges {
            indeg[b as usize] += 1;
        }
        let mut queue: Vec<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
        let mut drained = 0;
        while let Some(i) = queue.pop() {
            drained += 1;
            for &(a, b) in &self.edges {
                if a as usize == i {
                    indeg[b as usize] -= 1;
                    if indeg[b as usize] == 0 {
                        queue.push(b as usize);
                    }
                }
            }
        }
        drained < n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xpl_pkg::catalog::PackageSpec;
    use xpl_pkg::meta::{Dependency, FileManifest, Section};

    fn spec(name: &str, version: &str, size: u64, deps: Vec<Dependency>) -> PackageSpec {
        PackageSpec {
            name: name.to_string(),
            version: Version::parse(version),
            arch: Arch::Amd64,
            section: Section::Misc,
            essential: false,
            deb_size: size / 3 + 1,
            installed_size: size,
            depends: deps,
            manifest: FileManifest::default(),
        }
    }

    /// Figure 1's world: debian base (libc6/perl-base/dpkg cycle, bash,
    /// coreutils) + MariaDB and Tomcat8 primaries with dependencies.
    fn figure1() -> (Catalog, SemanticGraph) {
        let mut c = Catalog::new();
        let libc = c.add(spec(
            "libc6",
            "2.24",
            1800,
            vec![Dependency::any("perl-base")],
        ));
        let perl = c.add(spec(
            "perl-base",
            "5.24",
            600,
            vec![Dependency::any("dpkg")],
        ));
        let dpkg = c.add(spec("dpkg", "1.18", 400, vec![Dependency::any("libc6")]));
        let bash = c.add(spec("bash", "4.4", 120, vec![Dependency::any("libc6")]));
        let core = c.add(spec(
            "coreutils",
            "8.26",
            150,
            vec![Dependency::any("libc6")],
        ));
        let jdk = c.add(spec(
            "openjdk",
            "8u141",
            900,
            vec![Dependency::any("libc6")],
        ));
        let ucf = c.add(spec("ucf", "3.0", 30, vec![Dependency::any("coreutils")]));
        let gawk = c.add(spec("gawk", "4.1", 80, vec![Dependency::any("libc6")]));
        let maria = c.add(spec(
            "mariadb",
            "10.1",
            500,
            vec![Dependency::any("libc6"), Dependency::any("gawk")],
        ));
        let tomcat = c.add(spec(
            "tomcat8",
            "8.5",
            250,
            vec![Dependency::any("openjdk"), Dependency::any("ucf")],
        ));
        let installed = vec![libc, perl, dpkg, bash, core, jdk, ucf, gawk, maria, tomcat];
        let base_roots = vec![libc, bash, core];
        let g = SemanticGraph::of_image(
            &c,
            "fig1",
            BaseImageAttrs {
                os_type: xpl_pkg::OsType::Linux,
                distro: "debian".into(),
                version: "9".into(),
                arch: Arch::Amd64,
            },
            &installed,
            &[maria, tomcat],
            &base_roots,
        );
        (c, g)
    }

    #[test]
    fn roles_assigned_correctly() {
        let (_c, g) = figure1();
        assert_eq!(
            g.vertex_by_name(IStr::new("mariadb")).unwrap().role,
            PkgRole::Primary
        );
        assert_eq!(
            g.vertex_by_name(IStr::new("tomcat8")).unwrap().role,
            PkgRole::Primary
        );
        assert_eq!(
            g.vertex_by_name(IStr::new("gawk")).unwrap().role,
            PkgRole::Dependency
        );
        assert_eq!(
            g.vertex_by_name(IStr::new("openjdk")).unwrap().role,
            PkgRole::Dependency
        );
        assert_eq!(
            g.vertex_by_name(IStr::new("bash")).unwrap().role,
            PkgRole::BaseMember
        );
    }

    #[test]
    fn figure1_has_the_cycle() {
        let (_c, g) = figure1();
        assert!(g.has_cycle(), "libc6/perl-base/dpkg cycle expected");
    }

    #[test]
    fn subgraphs_partition_roles() {
        let (_c, g) = figure1();
        let base = g.base_subgraph();
        let prim = g.primary_subgraph();
        assert!(base.vertices.iter().all(|v| v.role == PkgRole::BaseMember));
        assert!(prim
            .vertices
            .iter()
            .all(|v| matches!(v.role, PkgRole::Primary | PkgRole::Dependency)));
        assert_eq!(
            base.package_count() + prim.package_count(),
            g.package_count()
        );
        // Edges inside subgraphs reference only subgraph vertices.
        for &(a, b) in &prim.edges {
            assert!((a as usize) < prim.vertices.len());
            assert!((b as usize) < prim.vertices.len());
        }
    }

    #[test]
    fn package_closure_subgraph_follows_edges() {
        let (_c, g) = figure1();
        let tomcat = g.package_closure_subgraph(IStr::new("tomcat8")).unwrap();
        let names: Vec<&str> = tomcat.vertices.iter().map(|v| v.name.as_str()).collect();
        assert!(names.contains(&"tomcat8"));
        assert!(names.contains(&"openjdk"));
        assert!(names.contains(&"ucf"));
        assert!(names.contains(&"coreutils"), "transitive dep via ucf");
        assert!(!names.contains(&"mariadb"));
        assert!(g.package_closure_subgraph(IStr::new("ghost")).is_none());
    }

    #[test]
    fn total_size_sums_vertices() {
        let (_c, g) = figure1();
        assert_eq!(
            g.total_size(),
            1800 + 600 + 400 + 120 + 150 + 900 + 30 + 80 + 500 + 250
        );
    }

    #[test]
    fn acyclic_graph_reports_no_cycle() {
        let g = SemanticGraph::from_parts(
            "t",
            BaseImageAttrs::ubuntu("16.04", Arch::Amd64),
            vec![],
            vec![],
        );
        assert!(!g.has_cycle());
    }
}
