//! Master graphs (§III-H).
//!
//! A master graph `G_M[T,D,V,A]` merges every stored VMI with base-image
//! attributes `(T,D,V,A)`: one base-image subgraph plus the union of all
//! member images' primary-package subgraphs (all of which are semantically
//! compatible with the base). Its purpose is to reduce similarity
//! computation: a new image is compared against one master per attribute
//! quadruple instead of every stored image.

use crate::graph::{PkgVertex, SemanticGraph};
use crate::similarity::{compatibility, sim_g};
use xpl_pkg::BaseImageAttrs;
use xpl_util::{FxHashMap, IStr};

/// The `(T, D, V, A)` key, rendered canonically.
pub type MasterKey = String;

/// A master graph.
#[derive(Clone)]
pub struct MasterGraph {
    pub key: MasterKey,
    pub base: BaseImageAttrs,
    /// The single base-image subgraph.
    pub base_vertices: Vec<PkgVertex>,
    /// Union of member primary-package subgraph vertices, by name. On
    /// conflict the newer version wins (upgrades in later uploads).
    pub packages: FxHashMap<IStr, PkgVertex>,
    /// Dependency edges among `packages` (by name, as vertex order is
    /// unstable under union).
    pub edges: Vec<(IStr, IStr)>,
    /// Image names merged into this master.
    pub members: Vec<String>,
}

impl MasterGraph {
    /// Create a master from one image's graph (Algorithm 1 line 16,
    /// `createMasterGraph`).
    pub fn create(graph: &SemanticGraph) -> MasterGraph {
        let base_sub = graph.base_subgraph();
        let mut m = MasterGraph {
            key: graph.base.key(),
            base: graph.base.clone(),
            base_vertices: base_sub.vertices.clone(),
            packages: FxHashMap::default(),
            edges: Vec::new(),
            members: Vec::new(),
        };
        m.absorb(graph);
        m
    }

    /// Merge an image's primary-package subgraph into the master
    /// (Algorithm 1 line 21, `G_M ← G_M ∪ G_I[PS]`).
    pub fn absorb(&mut self, graph: &SemanticGraph) {
        debug_assert_eq!(
            graph.base.key(),
            self.key,
            "master graphs are per-quadruple"
        );
        let prim = graph.primary_subgraph();
        for v in &prim.vertices {
            match self.packages.get(&v.name) {
                Some(existing) if existing.version >= v.version => {}
                _ => {
                    self.packages.insert(v.name, v.clone());
                }
            }
        }
        for &(a, b) in &prim.edges {
            let ea = prim.vertices[a as usize].name;
            let eb = prim.vertices[b as usize].name;
            if !self.edges.contains(&(ea, eb)) {
                self.edges.push((ea, eb));
            }
        }
        self.members.push(graph.image.clone());
    }

    /// Merge another master's packages (Algorithm 1 lines 22–26: when a
    /// base image is replaced, its master's primary packages move here).
    pub fn absorb_master(&mut self, other: &MasterGraph) {
        for (name, v) in &other.packages {
            match self.packages.get(name) {
                Some(existing) if existing.version >= v.version => {}
                _ => {
                    self.packages.insert(*name, v.clone());
                }
            }
        }
        for e in &other.edges {
            if !self.edges.contains(e) {
                self.edges.push(*e);
            }
        }
        self.members.extend(other.members.iter().cloned());
    }

    /// Render the master as a plain graph for similarity computation
    /// (base vertices + union packages).
    pub fn as_graph(&self) -> SemanticGraph {
        let mut vertices = self.base_vertices.clone();
        let mut names: Vec<&IStr> = self.packages.keys().collect();
        names.sort_by_key(|n| n.as_str());
        for n in names {
            vertices.push(self.packages[n].clone());
        }
        let by_name: FxHashMap<IStr, u32> = vertices
            .iter()
            .enumerate()
            .map(|(i, v)| (v.name, i as u32))
            .collect();
        let edges = self
            .edges
            .iter()
            .filter_map(|(a, b)| Some((*by_name.get(a)?, *by_name.get(b)?)))
            .collect();
        SemanticGraph::from_parts(
            &format!("master{}", self.key),
            self.base.clone(),
            vertices,
            edges,
        )
    }

    /// Similarity of an image graph to this master (§IV-B: "compares the
    /// newly uploaded VMI with the appropriate master graph").
    pub fn similarity_to(&self, graph: &SemanticGraph) -> f64 {
        sim_g(graph, &self.as_graph())
    }

    /// Is an image's primary subgraph semantically compatible with this
    /// master's base (§III-H requires compatibility = 1 for membership)?
    pub fn compatible_with(&self, graph: &SemanticGraph) -> bool {
        let base_graph = SemanticGraph::from_parts(
            &format!("{}[BI]", self.key),
            self.base.clone(),
            self.base_vertices.clone(),
            vec![],
        );
        compatibility(&base_graph, &graph.primary_subgraph()) == 1.0
    }

    pub fn package_count(&self) -> usize {
        self.packages.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::PkgRole;
    use xpl_pkg::{Arch, PackageId, Version};

    fn vx(name: &str, version: &str, size: u64, role: PkgRole) -> PkgVertex {
        PkgVertex {
            pkg: PackageId(0),
            name: IStr::new(name),
            version: Version::parse(version),
            arch: Arch::Amd64,
            size,
            role,
        }
    }

    fn image(name: &str, primaries: &[(&str, &str, u64)]) -> SemanticGraph {
        let mut vs = vec![
            vx("libc6", "2.23", 1800, PkgRole::BaseMember),
            vx("bash", "4.4", 120, PkgRole::BaseMember),
        ];
        for (n, v, s) in primaries {
            vs.push(vx(n, v, *s, PkgRole::Primary));
        }
        SemanticGraph::from_parts(
            name,
            BaseImageAttrs::ubuntu("16.04", Arch::Amd64),
            vs,
            vec![],
        )
    }

    #[test]
    fn create_captures_base_and_packages() {
        let g = image("redis", &[("redis", "6.0", 400)]);
        let m = MasterGraph::create(&g);
        assert_eq!(m.base_vertices.len(), 2);
        assert_eq!(m.package_count(), 1);
        assert_eq!(m.members, vec!["redis"]);
        assert_eq!(m.key, "[linux,ubuntu,16.04,amd64]");
    }

    #[test]
    fn absorb_unions_packages() {
        let mut m = MasterGraph::create(&image("redis", &[("redis", "6.0", 400)]));
        m.absorb(&image("nginx", &[("nginx", "1.18", 350)]));
        assert_eq!(m.package_count(), 2);
        assert_eq!(m.members.len(), 2);
        // Absorbing the same package again doesn't duplicate.
        m.absorb(&image("redis2", &[("redis", "6.0", 400)]));
        assert_eq!(m.package_count(), 2);
    }

    #[test]
    fn absorb_keeps_newest_version() {
        let mut m = MasterGraph::create(&image("r5", &[("redis", "5.0", 380)]));
        m.absorb(&image("r6", &[("redis", "6.0", 400)]));
        assert_eq!(
            m.packages[&IStr::new("redis")].version,
            Version::parse("6.0")
        );
        // Older upload later does not downgrade.
        m.absorb(&image("r4", &[("redis", "4.0", 300)]));
        assert_eq!(
            m.packages[&IStr::new("redis")].version,
            Version::parse("6.0")
        );
    }

    #[test]
    fn identical_image_high_similarity_to_master() {
        let g = image("redis", &[("redis", "6.0", 400)]);
        let m = MasterGraph::create(&g);
        let s = m.similarity_to(&image("redis-again", &[("redis", "6.0", 400)]));
        assert!((s - 1.0).abs() < 1e-9, "{s}");
    }

    #[test]
    fn master_reduces_comparisons_but_matches_pairwise_best() {
        // The master over {redis, nginx} should give a lemp-like image a
        // similarity at least as high as its best pairwise match.
        let redis = image("redis", &[("redis", "6.0", 400)]);
        let nginx = image("nginx", &[("nginx", "1.18", 350)]);
        let mut m = MasterGraph::create(&redis);
        m.absorb(&nginx);
        let lemp = image("lemp", &[("nginx", "1.18", 350), ("redis", "6.0", 400)]);
        let s_master = m.similarity_to(&lemp);
        let s_pair = sim_g(&lemp, &redis).max(sim_g(&lemp, &nginx));
        assert!(
            s_master >= s_pair - 1e-9,
            "master {s_master} vs pairwise {s_pair}"
        );
    }

    #[test]
    fn compatible_with_checks_base_conflicts() {
        let g = image("redis", &[("redis", "6.0", 400)]);
        let m = MasterGraph::create(&g);
        // Compatible: primary set doesn't pin anything the base provides.
        assert!(m.compatible_with(&image("ok", &[("nginx", "1.18", 350)])));
        // Incompatible: pins a different version of a base package.
        let mut bad_vs = vec![
            vx("libc6", "2.23", 1800, PkgRole::BaseMember),
            vx("bash", "4.4", 120, PkgRole::BaseMember),
            vx("libc6-new", "9.9", 10, PkgRole::Primary),
        ];
        bad_vs[2].name = IStr::new("libc6"); // primary pinning libc6 9.9
        bad_vs[2].version = Version::parse("9.9");
        let bad = SemanticGraph::from_parts(
            "bad",
            BaseImageAttrs::ubuntu("16.04", Arch::Amd64),
            bad_vs,
            vec![],
        );
        assert!(!m.compatible_with(&bad));
    }

    #[test]
    fn absorb_master_moves_packages() {
        let mut a = MasterGraph::create(&image("redis", &[("redis", "6.0", 400)]));
        let b = MasterGraph::create(&image("nginx", &[("nginx", "1.18", 350)]));
        a.absorb_master(&b);
        assert_eq!(a.package_count(), 2);
        assert!(a.members.contains(&"nginx".to_string()));
    }

    #[test]
    fn as_graph_is_deterministic() {
        let mut m = MasterGraph::create(&image("a", &[("zzz", "1", 10)]));
        m.absorb(&image("b", &[("aaa", "1", 10)]));
        let g1 = m.as_graph();
        let g2 = m.as_graph();
        let names1: Vec<&str> = g1.vertices.iter().map(|v| v.name.as_str()).collect();
        let names2: Vec<&str> = g2.vertices.iter().map(|v| v.name.as_str()).collect();
        assert_eq!(names1, names2);
    }
}
