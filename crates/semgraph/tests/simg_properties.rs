//! Property tests for the `SimG` similarity metric (§III-F).
//!
//! Random graph pairs are drawn from a shared pool of package names so
//! overlap actually occurs. Names are unique *within* each graph — the
//! invariant real VMI graphs satisfy (dpkg installs one version of a
//! name at a time) and the one under which SimG's matched mass is
//! bounded by its union mass.

use proptest::prelude::*;
use xpl_pkg::{Arch, BaseImageAttrs, PackageId, Version};
use xpl_semgraph::{sim_g, PkgRole, PkgVertex, SemanticGraph};
use xpl_util::IStr;

const POOL: usize = 20;

fn vertex(idx: usize, version_id: u8, size: u64) -> PkgVertex {
    PkgVertex {
        pkg: PackageId(idx as u32),
        name: IStr::new(&format!("pool-pkg-{idx:02}")),
        version: Version::parse(&format!("{}.{}", 1 + version_id / 2, version_id % 2)),
        arch: Arch::Amd64,
        size,
        role: if idx.is_multiple_of(3) {
            PkgRole::BaseMember
        } else {
            PkgRole::Primary
        },
    }
}

/// A membership word: per pool slot, (in_g1, in_g2, version, size).
type Word = Vec<(bool, bool, u8, u64)>;

fn graphs_from(word: &Word) -> (SemanticGraph, SemanticGraph) {
    let base = BaseImageAttrs::ubuntu("16.04", Arch::Amd64);
    let mut v1 = Vec::new();
    let mut v2 = Vec::new();
    for (idx, &(in1, in2, version, size)) in word.iter().enumerate() {
        if in1 {
            v1.push(vertex(idx, version, size));
        }
        if in2 {
            // Same name in g2 may carry a different version/size.
            v2.push(vertex(
                idx,
                version.wrapping_mul(3) % 4,
                size.max(1) / 2 + 1,
            ));
        }
    }
    (
        SemanticGraph::from_parts("g1", base.clone(), v1, vec![]),
        SemanticGraph::from_parts("g2", base, v2, vec![]),
    )
}

fn word_strategy() -> impl Strategy<Value = Word> {
    proptest::collection::vec(
        (any::<bool>(), any::<bool>(), 0u8..4, 1u64..5_000),
        POOL..=POOL,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    #[test]
    fn symmetric(word in word_strategy()) {
        let (a, b) = graphs_from(&word);
        prop_assert!((sim_g(&a, &b) - sim_g(&b, &a)).abs() < 1e-9);
    }

    #[test]
    fn bounded_to_unit_interval(word in word_strategy()) {
        let (a, b) = graphs_from(&word);
        let s = sim_g(&a, &b);
        prop_assert!((0.0..=1.0 + 1e-9).contains(&s), "sim_g out of range: {}", s);
    }

    #[test]
    fn identity_is_maximal(word in word_strategy()) {
        let (a, b) = graphs_from(&word);
        // Self-similarity is exactly 1 (the metric's maximum)…
        prop_assert!((sim_g(&a, &a) - 1.0).abs() < 1e-9);
        // …so no other graph can beat it.
        prop_assert!(sim_g(&a, &b) <= sim_g(&a, &a) + 1e-9);
    }

    #[test]
    fn monotone_under_adding_a_shared_package(
        word in word_strategy(),
        size in 1u64..50_000,
        version in 0u8..4,
    ) {
        // Adding the *same* package (identical identity and size) to both
        // graphs can only increase similarity: it grows matched and union
        // mass by the same amount, and max-size rescaling is uniform.
        let (a, b) = graphs_from(&word);
        let before = sim_g(&a, &b);
        let extra = vertex(POOL + 1, version, size); // name outside the pool
        let mut av = a.vertices.clone();
        let mut bv = b.vertices.clone();
        av.push(extra.clone());
        bv.push(extra);
        let a2 = SemanticGraph::from_parts("g1+", a.base.clone(), av, vec![]);
        let b2 = SemanticGraph::from_parts("g2+", b.base.clone(), bv, vec![]);
        let after = sim_g(&a2, &b2);
        prop_assert!(
            after >= before - 1e-9,
            "shared package lowered sim_g: {} -> {}", before, after
        );
    }

    #[test]
    fn disjoint_name_sets_score_zero(word in word_strategy()) {
        // Force disjointness: g1 keeps even slots, g2 keeps odd slots.
        let disjoint: Word = word
            .iter()
            .enumerate()
            .map(|(i, &(in1, in2, v, s))| (in1 && i % 2 == 0, in2 && i % 2 == 1, v, s))
            .collect();
        let (a, b) = graphs_from(&disjoint);
        if !a.vertices.is_empty() && !b.vertices.is_empty() {
            prop_assert!(sim_g(&a, &b).abs() < 1e-12);
        }
    }
}
