//! An LZ4-class byte-oriented fast codec.
//!
//! DEFLATE buys ratio with an entropy stage that costs a bit-oriented
//! decode loop; this codec skips entropy coding entirely. The stream is
//! a sequence of *sequences*: a token byte whose high nibble is the
//! literal-run length and whose low nibble is the match length minus
//! [`MIN_MATCH`], each nibble saturating at 15 with `0xFF`-extension
//! bytes, then the literals, then a 2-byte little-endian match offset:
//!
//! ```text
//! ┌────────────┬─────────────┬──────────┬─────────────┬─────────────┐
//! │ token      │ lit-len ext │ literals │ offset      │ mlen ext    │
//! │ LLLL MMMM  │ 0xFF…, last │ L bytes  │ u16 LE ≥ 1  │ 0xFF…, last │
//! │ 1 byte     │ byte < 255  │          │ 2 bytes     │ byte < 255  │
//! └────────────┴─────────────┴──────────┴─────────────┴─────────────┘
//! ```
//!
//! The final sequence is literals-only (no offset, no match), so a
//! decoder always terminates on a literal run. Matches are found by a
//! greedy single-probe hash table over 4-byte windows — one lookup per
//! position, no chains, no lazy evaluation — which is what makes the
//! encoder byte-oriented and fast; the decoder is two `memcpy`-shaped
//! loops. Decompression therefore runs several times faster than
//! inflate, at a worse ratio: exactly the hot-tier trade.
//!
//! Corrupt or truncated input surfaces as a typed [`Lz4Error`], never a
//! panic, and the decoder's output is capped by the caller-provided
//! bound so hostile lengths cannot force huge allocations.

/// Matches shorter than this are not worth a 3-byte sequence overhead;
/// the low token nibble encodes `match_len - MIN_MATCH`.
pub const MIN_MATCH: usize = 4;

/// Match offsets are `u16`, so the sliding window is 64 KiB - 1.
const MAX_OFFSET: usize = u16::MAX as usize;

/// The last bytes of the input are always emitted as literals: a match
/// never extends into the final 5 bytes, and the match search stops 12
/// bytes short of the end (the classic LZ4 end-condition, which lets
/// the copy loops run without per-byte bounds checks near the tail).
const LAST_LITERALS: usize = 5;
const MATCH_SEARCH_LIMIT: usize = 12;

/// 2^14-entry single-probe hash table: 64 KiB of scratch per call.
const HASH_BITS: u32 = 14;

/// Upper bound on how much an LZ4-class stream can expand when decoded:
/// a worst-case sequence of ~1 + k bytes (token + extension bytes, the
/// offset amortizing away) emits at most ~19 + 255·k match bytes, so
/// the ratio approaches 255 from below. An index entry claiming more
/// than this per compressed byte is corrupt by construction.
pub const MAX_LZ4_EXPANSION: u64 = 256;

/// Decode failures. Every malformed input is a value of this type.
#[derive(Debug, PartialEq, Eq)]
pub enum Lz4Error {
    /// The stream ended mid-token, mid-literal-run, or mid-offset.
    Truncated,
    /// A match offset of zero, or one reaching before the output start.
    BadOffset { at: usize, offset: usize },
    /// Decoded output would exceed the caller's bound.
    TooLong { cap: u64 },
}

impl std::fmt::Display for Lz4Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Lz4Error::Truncated => write!(f, "truncated lz4 stream"),
            Lz4Error::BadOffset { at, offset } => {
                write!(
                    f,
                    "lz4 offset {offset} at input byte {at} reaches before the output start"
                )
            }
            Lz4Error::TooLong { cap } => {
                write!(f, "lz4 stream decodes past the {cap}-byte bound")
            }
        }
    }
}

impl std::error::Error for Lz4Error {}

#[inline(always)]
fn hash4(bytes: &[u8]) -> usize {
    let v = u32::from_le_bytes(bytes[..4].try_into().unwrap());
    (v.wrapping_mul(2654435761) >> (32 - HASH_BITS)) as usize
}

/// Append a length in the token-nibble + `0xFF`-extension encoding.
#[inline]
fn push_ext_len(out: &mut Vec<u8>, mut len: usize) {
    while len >= 255 {
        out.push(0xFF);
        len -= 255;
    }
    out.push(len as u8);
}

/// Emit one sequence: `literals`, then (unless final) a match of
/// `match_len` bytes at `offset`.
fn push_sequence(out: &mut Vec<u8>, literals: &[u8], m: Option<(usize, usize)>) {
    let lit_nibble = literals.len().min(15);
    let (match_nibble, tail) = match m {
        Some((_, match_len)) => ((match_len - MIN_MATCH).min(15), m),
        None => (0, None),
    };
    out.push(((lit_nibble as u8) << 4) | match_nibble as u8);
    if lit_nibble == 15 {
        push_ext_len(out, literals.len() - 15);
    }
    out.extend_from_slice(literals);
    if let Some((offset, match_len)) = tail {
        out.extend_from_slice(&(offset as u16).to_le_bytes());
        if match_nibble == 15 {
            push_ext_len(out, match_len - MIN_MATCH - 15);
        }
    }
}

/// How far the match at (`pos`, `cand`) extends, comparing 8 bytes per
/// step; the match may run up to `limit` (exclusive).
#[inline]
fn match_length(src: &[u8], cand: usize, pos: usize, limit: usize) -> usize {
    let mut len = 0;
    while pos + len + 8 <= limit {
        let a = u64::from_le_bytes(src[cand + len..cand + len + 8].try_into().unwrap());
        let b = u64::from_le_bytes(src[pos + len..pos + len + 8].try_into().unwrap());
        let x = a ^ b;
        if x != 0 {
            return len + (x.trailing_zeros() / 8) as usize;
        }
        len += 8;
    }
    while pos + len < limit && src[cand + len] == src[pos + len] {
        len += 1;
    }
    len
}

/// Compress `src` with the greedy single-probe matcher. Deterministic:
/// the same input always yields the same stream.
pub fn lz4_compress(src: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(src.len() / 2 + 16);
    if src.len() < MATCH_SEARCH_LIMIT + MIN_MATCH {
        push_sequence(&mut out, src, None);
        return out;
    }
    let mut table = vec![u32::MAX; 1 << HASH_BITS];
    let search_end = src.len() - MATCH_SEARCH_LIMIT;
    let match_end = src.len() - LAST_LITERALS;
    let mut anchor = 0usize;
    let mut pos = 0usize;
    while pos <= search_end {
        let h = hash4(&src[pos..]);
        let cand = table[h] as usize;
        table[h] = pos as u32;
        if cand != u32::MAX as usize
            && pos - cand <= MAX_OFFSET
            && src[cand..cand + 4] == src[pos..pos + 4]
        {
            // Extend backwards over bytes the literal run would repeat.
            let mut start = pos;
            let mut m = cand;
            while start > anchor && m > 0 && src[m - 1] == src[start - 1] {
                start -= 1;
                m -= 1;
            }
            let len = MIN_MATCH + match_length(src, m + MIN_MATCH, start + MIN_MATCH, match_end);
            push_sequence(&mut out, &src[anchor..start], Some((start - m, len)));
            pos = start + len;
            anchor = pos;
            continue;
        }
        pos += 1;
    }
    push_sequence(&mut out, &src[anchor..], None);
    out
}

/// Decompress an [`lz4_compress`] stream. `cap` bounds the output: a
/// stream decoding past it is a typed error, and the initial allocation
/// never exceeds it — the caller (the blocked container, which knows
/// each block's exact uncompressed size) supplies a trustworthy bound.
pub fn lz4_decompress(src: &[u8], cap: u64) -> Result<Vec<u8>, Lz4Error> {
    let cap_usize = cap.min(isize::MAX as u64) as usize;
    let mut out: Vec<u8> = Vec::with_capacity(cap_usize);
    if src.is_empty() {
        return Ok(out);
    }
    let mut pos = 0usize;
    loop {
        let token = src[pos];
        pos += 1;
        // Literal run.
        let mut lit_len = (token >> 4) as usize;
        if lit_len == 15 {
            loop {
                let b = *src.get(pos).ok_or(Lz4Error::Truncated)?;
                pos += 1;
                lit_len += b as usize;
                if b != 0xFF {
                    break;
                }
            }
        }
        if pos + lit_len > src.len() {
            return Err(Lz4Error::Truncated);
        }
        if out.len() + lit_len > cap_usize {
            return Err(Lz4Error::TooLong { cap });
        }
        out.extend_from_slice(&src[pos..pos + lit_len]);
        pos += lit_len;
        if pos == src.len() {
            return Ok(out); // final literals-only sequence
        }
        // Match.
        if pos + 2 > src.len() {
            return Err(Lz4Error::Truncated);
        }
        let offset = u16::from_le_bytes(src[pos..pos + 2].try_into().unwrap()) as usize;
        pos += 2;
        if offset == 0 || offset > out.len() {
            return Err(Lz4Error::BadOffset {
                at: pos - 2,
                offset,
            });
        }
        let mut match_len = MIN_MATCH + (token & 0x0F) as usize;
        if token & 0x0F == 15 {
            loop {
                let b = *src.get(pos).ok_or(Lz4Error::Truncated)?;
                pos += 1;
                match_len += b as usize;
                if b != 0xFF {
                    break;
                }
            }
        }
        if out.len() + match_len > cap_usize {
            return Err(Lz4Error::TooLong { cap });
        }
        let start = out.len() - offset;
        if offset >= match_len {
            out.extend_from_within(start..start + match_len);
        } else {
            // Overlapping match: the span from `start` is a repeating
            // pattern of period `offset`; each copy doubles what is
            // available to copy from.
            let mut remaining = match_len;
            while remaining > 0 {
                let avail = (out.len() - start).min(remaining);
                out.extend_from_within(start..start + avail);
                remaining -= avail;
            }
        }
        if pos == src.len() {
            // A stream may validly end right after a match only if the
            // encoder emitted an empty final literal run — ours never
            // does, but the empty-run token `0x00` handles it above, so
            // ending here means the terminating sequence is missing.
            return Err(Lz4Error::Truncated);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(n: usize, seed: u64) -> Vec<u8> {
        let mut out = Vec::with_capacity(n);
        let mut rng = xpl_util::SplitMix64::new(seed);
        while out.len() < n {
            match rng.next_u64() % 4 {
                0 => out.extend_from_slice(b"/var/lib/dpkg/info/"),
                1 => out.extend_from_slice(&rng.next_u64().to_le_bytes()),
                2 => out.extend_from_slice(&[0u8; 23]),
                _ => out.extend_from_slice(b"package-version-1.2.3"),
            }
        }
        out.truncate(n);
        out
    }

    #[test]
    fn roundtrip_shapes() {
        for n in [0, 1, 2, 12, 13, 17, 100, 4096, 65535, 65536, 65537, 300_000] {
            let data = sample(n, 42);
            let c = lz4_compress(&data);
            assert_eq!(
                lz4_decompress(&c, n as u64).unwrap(),
                data,
                "n={n} failed round-trip"
            );
        }
    }

    #[test]
    fn compresses_redundant_input() {
        let data = vec![7u8; 100_000];
        let c = lz4_compress(&data);
        assert!(c.len() < data.len() / 50, "{} bytes", c.len());
        assert_eq!(lz4_decompress(&c, data.len() as u64).unwrap(), data);
    }

    #[test]
    fn incompressible_input_expands_boundedly() {
        let mut rng = xpl_util::SplitMix64::new(9);
        let data: Vec<u8> = (0..50_000).map(|_| rng.next_u64() as u8).collect();
        let c = lz4_compress(&data);
        assert!(c.len() < data.len() + data.len() / 128 + 32);
        assert_eq!(lz4_decompress(&c, data.len() as u64).unwrap(), data);
    }

    #[test]
    fn overlapping_matches_decode() {
        // Period-1 and period-3 runs force the overlapping-copy path.
        let mut data = b"abcabcabcabcabcabcabcabcabcabc".to_vec();
        data.extend(std::iter::repeat_n(b'z', 500));
        data.extend_from_slice(b"tail-literals");
        let c = lz4_compress(&data);
        assert_eq!(lz4_decompress(&c, data.len() as u64).unwrap(), data);
    }

    #[test]
    fn cap_bounds_output_and_allocation() {
        let data = vec![0u8; 100_000];
        let c = lz4_compress(&data);
        assert_eq!(
            lz4_decompress(&c, 99_999),
            Err(Lz4Error::TooLong { cap: 99_999 })
        );
        assert_eq!(lz4_decompress(&c, 100_000).unwrap(), data);
    }

    #[test]
    fn truncation_at_every_byte_is_typed_or_an_exact_prefix() {
        // A raw LZ4 stream has no trailer, so a cut landing exactly on
        // a sequence boundary decodes to a (correct) prefix — the
        // blocked container's per-block length + CRC checks are what
        // reject those (pinned in `blocked::tests`). Everything else
        // must be a typed error; nothing may panic.
        let data = sample(10_000, 3);
        let c = lz4_compress(&data);
        let mut short_decodes = 0usize;
        for cut in 0..c.len() {
            match lz4_decompress(&c[..cut], data.len() as u64) {
                Ok(got) => {
                    assert!(
                        data.starts_with(&got) && got.len() < data.len(),
                        "truncation to {cut} bytes decoded a non-prefix"
                    );
                    short_decodes += 1;
                }
                Err(
                    Lz4Error::Truncated | Lz4Error::BadOffset { .. } | Lz4Error::TooLong { .. },
                ) => {}
            }
        }
        assert!(short_decodes < c.len() / 4, "too many boundary decodes");
    }

    #[test]
    fn zero_and_hostile_offsets_are_typed() {
        // token: 1 literal + match, then a zero offset.
        let err = lz4_decompress(&[0x10, b'a', 0x00, 0x00], 100).unwrap_err();
        assert_eq!(err, Lz4Error::BadOffset { at: 2, offset: 0 });
        // Offset pointing before the start of the output.
        let err = lz4_decompress(&[0x10, b'a', 0x09, 0x00], 100).unwrap_err();
        assert_eq!(err, Lz4Error::BadOffset { at: 2, offset: 9 });
    }
}
