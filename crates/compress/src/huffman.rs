//! Canonical Huffman coding for DEFLATE.
//!
//! * [`build_lengths`] turns symbol frequencies into length-limited code
//!   lengths (≤15 bits, as DEFLATE requires) using frequency-halving
//!   rebuilds — simple, and provably convergent because equal frequencies
//!   produce a balanced tree of depth ⌈log₂ n⌉ ≤ 9 for n ≤ 288.
//! * [`canonical_codes`] assigns the RFC 1951 canonical code values.
//! * [`HuffmanDecoder`] decodes canonical codes bit by bit using the
//!   counts/offsets method (fast enough for our stream sizes and trivially
//!   correct).

use crate::bitio::{BitError, BitReader};

/// Build length-limited Huffman code lengths from frequencies.
///
/// Symbols with zero frequency get length 0 (absent). At least one symbol
/// must have nonzero frequency. If only one symbol is present it gets
/// length 1 (DEFLATE requires complete-enough codes; a 1-bit code for a
/// single symbol is the conventional choice).
pub fn build_lengths(freqs: &[u32], max_len: u32) -> Vec<u32> {
    assert!(!freqs.is_empty());
    let mut f: Vec<u64> = freqs.iter().map(|&x| x as u64).collect();
    loop {
        let lengths = huffman_lengths_once(&f);
        let max = lengths.iter().copied().max().unwrap_or(0);
        if max <= max_len {
            return lengths;
        }
        // Halve (rounding up to keep nonzero) and retry; flattens the
        // frequency distribution, shrinking maximum depth.
        for x in f.iter_mut() {
            if *x > 0 {
                *x = (*x).div_ceil(2);
            }
        }
    }
}

/// One unconstrained Huffman construction returning code lengths.
fn huffman_lengths_once(freqs: &[u64]) -> Vec<u32> {
    #[derive(Clone)]
    struct Node {
        freq: u64,
        // Child indexes into the node arena, or symbol for leaves.
        kind: NodeKind,
    }
    #[derive(Clone)]
    enum NodeKind {
        Leaf(usize),
        Internal(usize, usize),
    }

    let live: Vec<usize> = freqs
        .iter()
        .enumerate()
        .filter(|(_, &f)| f > 0)
        .map(|(i, _)| i)
        .collect();
    let mut lengths = vec![0u32; freqs.len()];
    match live.len() {
        0 => return lengths,
        1 => {
            lengths[live[0]] = 1;
            return lengths;
        }
        _ => {}
    }

    let mut arena: Vec<Node> = live
        .iter()
        .map(|&s| Node {
            freq: freqs[s],
            kind: NodeKind::Leaf(s),
        })
        .collect();

    // Min-heap of (freq, arena index); tie-break on index for determinism.
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;
    let mut heap: BinaryHeap<Reverse<(u64, usize)>> = arena
        .iter()
        .enumerate()
        .map(|(i, n)| Reverse((n.freq, i)))
        .collect();

    while heap.len() > 1 {
        let Reverse((fa, a)) = heap.pop().unwrap();
        let Reverse((fb, b)) = heap.pop().unwrap();
        let idx = arena.len();
        arena.push(Node {
            freq: fa + fb,
            kind: NodeKind::Internal(a, b),
        });
        heap.push(Reverse((fa + fb, idx)));
    }

    // Depth-first walk assigning depths to leaves.
    let root = heap.pop().unwrap().0 .1;
    let mut stack = vec![(root, 0u32)];
    while let Some((idx, depth)) = stack.pop() {
        match arena[idx].kind {
            NodeKind::Leaf(sym) => lengths[sym] = depth.max(1),
            NodeKind::Internal(a, b) => {
                stack.push((a, depth + 1));
                stack.push((b, depth + 1));
            }
        }
    }
    lengths
}

/// Assign canonical (RFC 1951 §3.2.2) code values for the given lengths.
/// Returns `(code, length)` pairs; absent symbols have length 0.
pub fn canonical_codes(lengths: &[u32]) -> Vec<(u32, u32)> {
    let max_len = lengths.iter().copied().max().unwrap_or(0);
    let mut bl_count = vec![0u32; (max_len + 1) as usize];
    for &l in lengths {
        if l > 0 {
            bl_count[l as usize] += 1;
        }
    }
    let mut next_code = vec![0u32; (max_len + 2) as usize];
    let mut code = 0u32;
    for bits in 1..=max_len {
        code = (code + bl_count[(bits - 1) as usize]) << 1;
        next_code[bits as usize] = code;
    }
    lengths
        .iter()
        .map(|&l| {
            if l == 0 {
                (0, 0)
            } else {
                let c = next_code[l as usize];
                next_code[l as usize] += 1;
                (c, l)
            }
        })
        .collect()
}

/// Verify the Kraft inequality holds with equality margin (i.e. the code is
/// not oversubscribed). Used by the decoder to reject corrupt tables.
pub fn kraft_ok(lengths: &[u32]) -> bool {
    let mut sum = 0u64;
    const ONE: u64 = 1 << 32;
    for &l in lengths {
        if l > 0 {
            if l > 32 {
                return false;
            }
            sum += ONE >> l;
            if sum > ONE {
                return false;
            }
        }
    }
    true
}

/// Canonical Huffman decoder (counts/offsets method).
pub struct HuffmanDecoder {
    /// count[len] = number of codes with that length.
    count: Vec<u32>,
    /// Symbols sorted by (length, symbol order).
    symbols: Vec<u32>,
    max_len: u32,
}

/// Decoder construction / decode errors.
#[derive(Debug, PartialEq, Eq)]
pub enum HuffError {
    /// Code table oversubscribed or empty.
    InvalidTable,
    /// Bit pattern doesn't map to any symbol.
    InvalidCode,
    /// Input exhausted mid-code.
    Eof,
}

impl From<BitError> for HuffError {
    fn from(_: BitError) -> Self {
        HuffError::Eof
    }
}

impl HuffmanDecoder {
    pub fn new(lengths: &[u32]) -> Result<Self, HuffError> {
        let max_len = lengths.iter().copied().max().unwrap_or(0);
        if max_len == 0 || !kraft_ok(lengths) {
            return Err(HuffError::InvalidTable);
        }
        let mut count = vec![0u32; (max_len + 1) as usize];
        for &l in lengths {
            if l > 0 {
                count[l as usize] += 1;
            }
        }
        // offsets[len] = index of first symbol of that length in `symbols`.
        let mut offsets = vec![0u32; (max_len + 2) as usize];
        for l in 1..=max_len {
            offsets[(l + 1) as usize] = offsets[l as usize] + count[l as usize];
        }
        let mut symbols = vec![0u32; lengths.iter().filter(|&&l| l > 0).count()];
        let mut next = offsets.clone();
        for (sym, &l) in lengths.iter().enumerate() {
            if l > 0 {
                symbols[next[l as usize] as usize] = sym as u32;
                next[l as usize] += 1;
            }
        }
        Ok(HuffmanDecoder {
            count,
            symbols,
            max_len,
        })
    }

    /// Decode one symbol from the reader.
    pub fn decode(&self, r: &mut BitReader<'_>) -> Result<u32, HuffError> {
        let mut code: u32 = 0;
        let mut first: u32 = 0;
        let mut index: u32 = 0;
        for len in 1..=self.max_len {
            code |= r.read_bit()?;
            let cnt = self.count[len as usize];
            if code < first + cnt {
                return Ok(self.symbols[(index + (code - first)) as usize]);
            }
            index += cnt;
            first = (first + cnt) << 1;
            code <<= 1;
        }
        Err(HuffError::InvalidCode)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bitio::BitWriter;

    #[test]
    fn lengths_respect_limit() {
        // Pathological exponential frequencies force long codes; the
        // limiter must cap them at the requested bound.
        let freqs: Vec<u32> = (0..40).map(|i| 1u32 << (i % 30)).collect();
        let lengths = build_lengths(&freqs, 15);
        assert!(lengths.iter().all(|&l| l <= 15));
        assert!(kraft_ok(&lengths));
        assert!(lengths.iter().any(|&l| l > 0));
    }

    #[test]
    fn single_symbol_gets_one_bit() {
        let mut freqs = vec![0u32; 10];
        freqs[3] = 7;
        let lengths = build_lengths(&freqs, 15);
        assert_eq!(lengths[3], 1);
        assert!(lengths.iter().enumerate().all(|(i, &l)| i == 3 || l == 0));
    }

    #[test]
    fn canonical_assignment_matches_rfc_example() {
        // RFC 1951 §3.2.2 example: lengths (3,3,3,3,3,2,4,4) yield codes
        // 010,011,100,101,110,00,1110,1111.
        let lengths = [3, 3, 3, 3, 3, 2, 4, 4];
        let codes = canonical_codes(&lengths);
        let expect = [0b010, 0b011, 0b100, 0b101, 0b110, 0b00, 0b1110, 0b1111];
        for (i, &(c, l)) in codes.iter().enumerate() {
            assert_eq!(l, lengths[i]);
            assert_eq!(c, expect[i], "symbol {i}");
        }
    }

    #[test]
    fn encode_decode_roundtrip() {
        let freqs = [5u32, 9, 12, 13, 16, 45, 0, 1];
        let lengths = build_lengths(&freqs, 15);
        let codes = canonical_codes(&lengths);
        let dec = HuffmanDecoder::new(&lengths).unwrap();

        let msg: Vec<u32> = vec![5, 0, 2, 4, 5, 5, 3, 7, 1, 5];
        let mut w = BitWriter::new();
        for &s in &msg {
            let (c, l) = codes[s as usize];
            assert!(l > 0, "symbol {s} must have a code");
            w.write_code(c, l);
        }
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        for &s in &msg {
            assert_eq!(dec.decode(&mut r).unwrap(), s);
        }
    }

    #[test]
    fn decoder_rejects_oversubscribed() {
        // Three 1-bit codes: impossible.
        assert_eq!(
            HuffmanDecoder::new(&[1, 1, 1]).err(),
            Some(HuffError::InvalidTable)
        );
    }

    #[test]
    fn kraft_accepts_exact_and_under() {
        assert!(kraft_ok(&[1, 1]));
        assert!(kraft_ok(&[1, 2, 2]));
        assert!(kraft_ok(&[2, 2, 2])); // undersubscribed is fine
        assert!(!kraft_ok(&[1, 1, 2]));
    }

    #[test]
    fn weighted_lengths_shorter_for_frequent() {
        let freqs = [100u32, 1, 1, 1, 1, 1, 1, 1];
        let lengths = build_lengths(&freqs, 15);
        let min = *lengths.iter().filter(|&&l| l > 0).min().unwrap();
        assert_eq!(lengths[0], min, "most frequent symbol gets shortest code");
    }
}
