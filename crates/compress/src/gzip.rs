//! gzip framing (RFC 1952) over the DEFLATE core.
//!
//! The Qcow2+Gzip baseline compresses each serialized image with this
//! layer. Multi-member streams are supported (concatenated members decode
//! to the concatenation of their payloads), which is what the parallel
//! compressor in [`crate`] emits.

use crate::bitio::BitReader;
use crate::deflate::{deflate, inflate_from, InflateError};
use xpl_util::Crc32;

const MAGIC: [u8; 2] = [0x1F, 0x8B];
const METHOD_DEFLATE: u8 = 8;
const OS_UNKNOWN: u8 = 255;

const FHCRC: u8 = 1 << 1;
const FEXTRA: u8 = 1 << 2;
const FNAME: u8 = 1 << 3;
const FCOMMENT: u8 = 1 << 4;

/// gzip-compress `data` into a single member.
pub fn gzip_compress(data: &[u8]) -> Vec<u8> {
    let body = deflate(data);
    let mut out = Vec::with_capacity(body.len() + 18);
    out.extend_from_slice(&MAGIC);
    out.push(METHOD_DEFLATE);
    out.push(0); // FLG
    out.extend_from_slice(&[0, 0, 0, 0]); // MTIME: unset (determinism)
    out.push(0); // XFL
    out.push(OS_UNKNOWN);
    out.extend_from_slice(&body);
    out.extend_from_slice(&Crc32::checksum(data).to_le_bytes());
    out.extend_from_slice(&(data.len() as u32).to_le_bytes());
    out
}

/// gzip errors.
#[derive(Debug, PartialEq, Eq)]
pub enum GzipError {
    BadMagic,
    BadMethod,
    TruncatedHeader,
    TruncatedTrailer,
    CrcMismatch,
    SizeMismatch,
    /// Bytes remain after the last member but don't start another one.
    /// `offset` is where (in the original input) the garbage begins.
    TrailingGarbage {
        offset: usize,
    },
    Inflate(InflateError),
}

impl std::fmt::Display for GzipError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GzipError::BadMagic => write!(f, "bad gzip magic"),
            GzipError::BadMethod => write!(f, "unsupported gzip compression method"),
            GzipError::TruncatedHeader => write!(f, "truncated gzip header"),
            GzipError::TruncatedTrailer => write!(f, "truncated gzip trailer"),
            GzipError::CrcMismatch => write!(f, "gzip CRC-32 mismatch"),
            GzipError::SizeMismatch => write!(f, "gzip ISIZE mismatch"),
            GzipError::TrailingGarbage { offset } => {
                write!(f, "trailing garbage after gzip stream at byte {offset}")
            }
            GzipError::Inflate(e) => write!(f, "inflate failed: {e:?}"),
        }
    }
}

impl std::error::Error for GzipError {}

impl From<InflateError> for GzipError {
    fn from(e: InflateError) -> Self {
        GzipError::Inflate(e)
    }
}

/// Decompress a (possibly multi-member) gzip stream. Bytes after the
/// last member that don't begin another member are an error
/// ([`GzipError::TrailingGarbage`]), not silently ignored — a truncated
/// magic there almost always means a corrupted or mis-framed stream.
pub fn gzip_decompress(data: &[u8]) -> Result<Vec<u8>, GzipError> {
    let total = data.len();
    let mut data = data;
    let mut out = Vec::new();
    loop {
        let (payload, rest) = decompress_member(data)?;
        out.extend_from_slice(&payload);
        if rest.is_empty() {
            return Ok(out);
        }
        if rest.len() < 2 || rest[0..2] != MAGIC {
            return Err(GzipError::TrailingGarbage {
                offset: total - rest.len(),
            });
        }
        data = rest;
    }
}

/// Decode one member; returns `(payload, remaining_input)`.
fn decompress_member(data: &[u8]) -> Result<(Vec<u8>, &[u8]), GzipError> {
    if data.len() < 10 {
        return Err(GzipError::TruncatedHeader);
    }
    if data[0..2] != MAGIC {
        return Err(GzipError::BadMagic);
    }
    if data[2] != METHOD_DEFLATE {
        return Err(GzipError::BadMethod);
    }
    let flg = data[3];
    let mut pos = 10usize;
    if flg & FEXTRA != 0 {
        if data.len() < pos + 2 {
            return Err(GzipError::TruncatedHeader);
        }
        let xlen = u16::from_le_bytes([data[pos], data[pos + 1]]) as usize;
        pos += 2 + xlen;
    }
    for flag in [FNAME, FCOMMENT] {
        if flg & flag != 0 {
            let end = data
                .get(pos..)
                .and_then(|s| s.iter().position(|&b| b == 0))
                .ok_or(GzipError::TruncatedHeader)?;
            pos += end + 1;
        }
    }
    if flg & FHCRC != 0 {
        pos += 2;
    }
    if pos > data.len() {
        return Err(GzipError::TruncatedHeader);
    }

    let body = &data[pos..];
    let mut reader = BitReader::new(body);
    let payload = inflate_from(&mut reader)?;
    reader.align_byte();
    let body_len = reader.bits_consumed() / 8;
    if body.len() < body_len + 8 {
        return Err(GzipError::TruncatedTrailer);
    }
    let trailer = &body[body_len..body_len + 8];
    let crc = u32::from_le_bytes(trailer[0..4].try_into().unwrap());
    let isize_ = u32::from_le_bytes(trailer[4..8].try_into().unwrap());
    if crc != Crc32::checksum(&payload) {
        return Err(GzipError::CrcMismatch);
    }
    if isize_ != payload.len() as u32 {
        return Err(GzipError::SizeMismatch);
    }
    Ok((payload, &body[body_len + 8..]))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_basic() {
        let data = b"the quick brown fox jumps over the lazy dog".repeat(20);
        let c = gzip_compress(&data);
        assert_eq!(gzip_decompress(&c).unwrap(), data);
    }

    #[test]
    fn roundtrip_empty() {
        let c = gzip_compress(b"");
        assert_eq!(gzip_decompress(&c).unwrap(), b"");
    }

    #[test]
    fn multi_member_concatenation() {
        let a = gzip_compress(b"hello ");
        let b = gzip_compress(b"world");
        let mut joined = a;
        joined.extend_from_slice(&b);
        assert_eq!(gzip_decompress(&joined).unwrap(), b"hello world");
    }

    #[test]
    fn many_members() {
        let mut joined = Vec::new();
        let mut expect = Vec::new();
        for i in 0..10u8 {
            let part = vec![i; 100 + i as usize];
            joined.extend_from_slice(&gzip_compress(&part));
            expect.extend_from_slice(&part);
        }
        assert_eq!(gzip_decompress(&joined).unwrap(), expect);
    }

    #[test]
    fn crc_detects_corruption() {
        let data = b"payload payload payload payload".repeat(10);
        let mut c = gzip_compress(&data);
        // Flip a bit inside the deflate body (past the 10-byte header,
        // before the 8-byte trailer).
        let mid = 10 + (c.len() - 18) / 2;
        c[mid] ^= 0x10;
        assert!(gzip_decompress(&c).is_err(), "corruption must be detected");
    }

    #[test]
    fn bad_magic_rejected() {
        assert_eq!(
            gzip_decompress(&[0x1F, 0x8C, 8, 0, 0, 0, 0, 0, 0, 255]).err(),
            Some(GzipError::BadMagic)
        );
    }

    #[test]
    fn truncated_rejected() {
        let c = gzip_compress(b"some data worth compressing some data");
        assert!(gzip_decompress(&c[..c.len() - 3]).is_err());
    }

    #[test]
    fn trailing_garbage_is_typed_with_offset() {
        let data = b"member payload with enough bytes to frame".repeat(4);
        let mut c = gzip_compress(&data);
        let clean_len = c.len();
        c.extend_from_slice(b"\x00junk");
        let err = gzip_decompress(&c).unwrap_err();
        assert_eq!(err, GzipError::TrailingGarbage { offset: clean_len });
        assert_eq!(
            err.to_string(),
            format!("trailing garbage after gzip stream at byte {clean_len}")
        );
        // A lone half-magic byte is garbage too, not a truncated header.
        let mut d = gzip_compress(&data);
        d.push(0x1F);
        assert!(matches!(
            gzip_decompress(&d).unwrap_err(),
            GzipError::TrailingGarbage { .. }
        ));
    }

    #[test]
    fn skips_optional_header_fields() {
        // Build a member with FNAME set manually and ensure we skip it.
        let payload = b"flagged";
        let body = crate::deflate::deflate(payload);
        let mut m = vec![0x1F, 0x8B, 8, FNAME, 0, 0, 0, 0, 0, 255];
        m.extend_from_slice(b"file.img\0");
        m.extend_from_slice(&body);
        m.extend_from_slice(&Crc32::checksum(payload).to_le_bytes());
        m.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        assert_eq!(gzip_decompress(&m).unwrap(), payload);
    }
}
