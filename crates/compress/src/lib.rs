//! `xpl-compress` — DEFLATE (RFC 1951) and gzip (RFC 1952) from scratch.
//!
//! This crate provides the compression substrate for the paper's
//! "Qcow2 + Gzip" baseline: serialized images are compressed whole, so the
//! baseline captures intra-image redundancy but — unlike the deduplicating
//! systems — no cross-image redundancy, which is exactly the behaviour
//! Figure 3 contrasts.
//!
//! Public surface:
//! * [`deflate`] / [`inflate`] — raw DEFLATE streams.
//! * [`gzip_compress`] / [`gzip_decompress`] — framed, CRC-checked.
//! * [`gzip_compress_parallel`] — rayon-parallel multi-member gzip
//!   (RFC 1952 concatenation semantics), used for large image payloads.
//! * [`blocked`] — the seekable blocked container: parallel inflate and
//!   byte-range reads over independently-encoded 64 KiB blocks, behind
//!   the [`BlockCodec`] trait (legacy gzip stays readable via
//!   [`decompress_auto`]).
//! * [`lz4`] — the LZ4-class fast codec: greedy hash-table matching, a
//!   literal-run/match token format, no entropy stage. Slots into the
//!   blocked container as the hot-tier inner codec ([`BlockedLz4`],
//!   magic `XBL1`) so range reads and parallel decode come for free.

pub mod bitio;
pub mod blocked;
pub mod deflate;
pub mod gzip;
pub mod huffman;
pub mod lz4;
pub mod lz77;

pub use blocked::{
    blocked_compress, blocked_compress_inner, blocked_compress_lz4, blocked_compress_with,
    blocked_decompress, blocked_decompress_parallel, codec_by_name, codec_for, decompress_auto,
    inner_codec, is_blocked, read_range, verify_blocks, BlockCodec, BlockIndex, BlockedDeflate,
    BlockedError, BlockedLz4, BlockedReader, CodecError, CodecObs, InnerCodec, LegacyGzip,
    DEFAULT_BLOCK_SIZE,
};
pub use deflate::{deflate, inflate, InflateError};
pub use gzip::{gzip_compress, gzip_decompress, GzipError};
pub use lz4::{lz4_compress, lz4_decompress, Lz4Error};

use rayon::prelude::*;

/// Segment size for parallel compression. Each segment becomes an
/// independent gzip member; smaller segments parallelize better but lose a
/// little ratio at the seams.
pub const PARALLEL_SEGMENT: usize = 128 * 1024;

/// Compress `data` as a multi-member gzip stream, one member per
/// [`PARALLEL_SEGMENT`]-sized segment, in parallel.
pub fn gzip_compress_parallel(data: &[u8]) -> Vec<u8> {
    if data.len() <= PARALLEL_SEGMENT {
        return gzip_compress(data);
    }
    let members: Vec<Vec<u8>> = data
        .par_chunks(PARALLEL_SEGMENT)
        .map(gzip_compress)
        .collect();
    let total = members.iter().map(Vec::len).sum();
    let mut out = Vec::with_capacity(total);
    for m in members {
        out.extend_from_slice(&m);
    }
    out
}

/// Compression ratio `compressed / original` (lower is better); 1.0 for
/// empty input.
pub fn ratio(original_len: usize, compressed_len: usize) -> f64 {
    if original_len == 0 {
        1.0
    } else {
        compressed_len as f64 / original_len as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_roundtrip_matches_serial_payload() {
        let data: Vec<u8> = (0..400_000u32)
            .flat_map(|i| ((i / 64) as u16).to_le_bytes())
            .collect();
        let par = gzip_compress_parallel(&data);
        assert_eq!(gzip_decompress(&par).unwrap(), data);
        // Parallel output is multi-member; same payload, slightly larger.
        let ser = gzip_compress(&data);
        assert_eq!(gzip_decompress(&ser).unwrap(), data);
    }

    #[test]
    fn small_input_single_member() {
        let data = b"tiny";
        assert_eq!(gzip_compress_parallel(data), gzip_compress(data));
    }

    #[test]
    fn ratio_math() {
        assert_eq!(ratio(0, 10), 1.0);
        assert_eq!(ratio(100, 36), 0.36);
    }

    #[test]
    fn os_like_content_hits_paper_ratio_band() {
        // Figure 3's Gzip line implies ~0.35–0.45 compressed/original on
        // OS-image content. Mixed text + sparse binary stands in for that.
        let mut data = Vec::new();
        let mut rng = xpl_util::SplitMix64::new(5);
        let words = [
            "lib", "usr", "share", "config", "version", "depends", "package",
        ];
        for i in 0..20_000 {
            let w = words[(rng.next_u64() % words.len() as u64) as usize];
            data.extend_from_slice(w.as_bytes());
            data.push(b'/');
            if i % 8 == 0 {
                data.extend_from_slice(&rng.next_u64().to_le_bytes());
            }
            if i % 3 == 0 {
                data.extend_from_slice(&[0u8; 24]);
            }
        }
        let c = gzip_compress(&data);
        let r = ratio(data.len(), c.len());
        assert!(r < 0.55, "ratio {r} too poor for OS-like content");
    }
}
