//! LZ77 tokenization with a hash-chain matcher (zlib-style, with one-step
//! lazy matching).
//!
//! Produces the token stream consumed by the DEFLATE block encoder:
//! literals, and `(length 3–258, distance 1–32768)` back-references.

pub const MIN_MATCH: usize = 3;
pub const MAX_MATCH: usize = 258;
pub const WINDOW_SIZE: usize = 32 * 1024;

const HASH_BITS: u32 = 15;
const HASH_SIZE: usize = 1 << HASH_BITS;
/// Bound on chain walks per position — the compression/speed knob.
const MAX_CHAIN: usize = 96;
/// Stop searching when a match at least this long is found.
const GOOD_MATCH: usize = 64;

/// One LZ77 token.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Token {
    Literal(u8),
    /// Back-reference: copy `len` bytes from `dist` bytes back.
    Match {
        len: u16,
        dist: u16,
    },
}

#[inline]
fn hash3(data: &[u8], i: usize) -> usize {
    let v = (data[i] as u32) | ((data[i + 1] as u32) << 8) | ((data[i + 2] as u32) << 16);
    (v.wrapping_mul(0x9E37_79B1) >> (32 - HASH_BITS)) as usize
}

/// Length of the common prefix of `data[a..]` and `data[b..]`, up to
/// `max_len`, comparing 8 bytes per step via `u64` loads. Returns the
/// index of the first mismatch — identical to a byte-at-a-time scan.
#[inline]
fn match_len(data: &[u8], a: usize, b: usize, max_len: usize) -> usize {
    // One bounds check per slice, then check-free 8-byte strides.
    let sa = &data[a..a + max_len];
    let sb = &data[b..b + max_len];
    let mut l = 0usize;
    let mut ca = sa.chunks_exact(8);
    let mut cb = sb.chunks_exact(8);
    for (xa, xb) in ca.by_ref().zip(cb.by_ref()) {
        let x = u64::from_le_bytes(xa.try_into().unwrap());
        let y = u64::from_le_bytes(xb.try_into().unwrap());
        let xor = x ^ y;
        if xor != 0 {
            // First differing byte = first differing little-endian octet.
            return l + (xor.trailing_zeros() >> 3) as usize;
        }
        l += 8;
    }
    for (&pa, &pb) in ca.remainder().iter().zip(cb.remainder()) {
        if pa != pb {
            break;
        }
        l += 1;
    }
    l
}

thread_local! {
    /// Reusable hash-chain scratch (`head` + `prev`, ~160 KiB): zeroing
    /// `head` per call is far cheaper than allocating both arrays, and
    /// per-thread storage keeps the pool's parallel `tokenize` calls
    /// independent.
    static SCRATCH: std::cell::RefCell<(Vec<u32>, Vec<u32>)> =
        std::cell::RefCell::new((vec![0u32; HASH_SIZE], vec![0u32; WINDOW_SIZE]));
}

/// Tokenize `data` into literals and matches.
pub fn tokenize(data: &[u8]) -> Vec<Token> {
    SCRATCH.with(|s| {
        let (head, prev) = &mut *s.borrow_mut();
        // `head` must start empty; `prev` needs no clearing — chains only
        // ever reach entries written during this call (via `head`).
        head.fill(0);
        tokenize_with(data, head, prev)
    })
}

fn tokenize_with(data: &[u8], head: &mut [u32], prev: &mut [u32]) -> Vec<Token> {
    let n = data.len();
    let mut tokens = Vec::with_capacity(n / 3 + 16);
    if n < MIN_MATCH + 1 {
        tokens.extend(data.iter().map(|&b| Token::Literal(b)));
        return tokens;
    }

    // head[h] = most recent position with hash h (+1, 0 = none).
    // prev[i & (WINDOW-1)] = previous position with the same hash as i.
    // `h` is precomputed by the caller so a search + insert at the same
    // position hashes once.
    #[inline]
    fn insert(head: &mut [u32], prev: &mut [u32], h: usize, i: usize) {
        prev[i & (WINDOW_SIZE - 1)] = head[h];
        head[h] = (i + 1) as u32;
    }

    /// Longest match for position `i` against candidates on its chain.
    fn best_match(
        head: &[u32],
        prev: &[u32],
        data: &[u8],
        h: usize,
        i: usize,
        min_beat: usize,
    ) -> Option<(usize, usize)> {
        let n = data.len();
        if i + MIN_MATCH > n {
            return None;
        }
        let max_len = (n - i).min(MAX_MATCH);
        if max_len < MIN_MATCH {
            return None;
        }
        let mut cand = head[h];
        let mut best_len = min_beat.max(MIN_MATCH - 1);
        let mut best_dist = 0usize;
        // Quick-reject byte (the byte just past the current best match),
        // loaded once per improvement instead of once per candidate.
        let scan_end_ok = i + best_len < n;
        let mut scan_end = if scan_end_ok { data[i + best_len] } else { 0 };
        let window_floor = i.saturating_sub(WINDOW_SIZE);
        let mut chain = 0;
        while cand != 0 && chain < MAX_CHAIN {
            let c = (cand - 1) as usize;
            if c < window_floor || c >= i {
                break;
            }
            if scan_end_ok && data[c + best_len] == scan_end {
                let l = match_len(data, c, i, max_len);
                if l > best_len {
                    best_len = l;
                    best_dist = i - c;
                    if l >= GOOD_MATCH || l == max_len {
                        break;
                    }
                    // l < max_len ≤ n - i keeps the quick-reject byte in
                    // bounds.
                    scan_end = data[i + best_len];
                }
            }
            cand = prev[c & (WINDOW_SIZE - 1)];
            chain += 1;
        }
        if best_dist > 0 && best_len >= MIN_MATCH {
            Some((best_len, best_dist))
        } else {
            None
        }
    }

    let mut i = 0usize;
    while i < n {
        if i + MIN_MATCH > n {
            tokens.push(Token::Literal(data[i]));
            i += 1;
            continue;
        }
        let h = hash3(data, i);
        let here = best_match(head, prev, data, h, i, 0);
        match here {
            None => {
                insert(head, prev, h, i);
                tokens.push(Token::Literal(data[i]));
                i += 1;
            }
            Some((len, dist)) => {
                // One-step lazy matching: if the next position has a
                // strictly better match, emit a literal instead.
                insert(head, prev, h, i);
                let take_lazy = len < GOOD_MATCH
                    && i + 1 + MIN_MATCH <= n
                    && matches!(
                        best_match(head, prev, data, hash3(data, i + 1), i + 1, len),
                        Some((nl, _)) if nl > len
                    );
                if take_lazy {
                    tokens.push(Token::Literal(data[i]));
                    i += 1;
                } else {
                    tokens.push(Token::Match {
                        len: len as u16,
                        dist: dist as u16,
                    });
                    // Index the skipped positions so future matches can
                    // reference into this region.
                    let end = (i + len).min(n.saturating_sub(MIN_MATCH - 1));
                    for j in i + 1..end {
                        insert(head, prev, hash3(data, j), j);
                    }
                    i += len;
                }
            }
        }
    }
    tokens
}

/// Expand a token stream back into bytes (reference decoder for tests and
/// the inflate fallback).
pub fn detokenize(tokens: &[Token]) -> Vec<u8> {
    let mut out = Vec::new();
    for t in tokens {
        match *t {
            Token::Literal(b) => out.push(b),
            Token::Match { len, dist } => {
                copy_back_reference(&mut out, dist as usize, len as usize);
            }
        }
    }
    out
}

/// Append `len` bytes copied from `dist` bytes back, in bulk. Overlapping
/// references (dist < len) double the copied span each round, preserving
/// the byte-at-a-time semantics RFC 1951 requires.
#[inline]
pub(crate) fn copy_back_reference(out: &mut Vec<u8>, dist: usize, len: usize) {
    // dist == 0 would make the loop below spin forever; fail fast like
    // the byte-at-a-time code this replaced.
    assert!(dist > 0, "back-reference distance must be nonzero");
    let start = out.len() - dist;
    let mut remaining = len;
    while remaining > 0 {
        let avail = out.len() - start;
        let take = remaining.min(avail);
        out.extend_from_within(start..start + take);
        remaining -= take;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_simple() {
        let data = b"abcabcabcabcabcabc";
        let tokens = tokenize(data);
        assert_eq!(detokenize(&tokens), data);
        assert!(
            tokens.iter().any(|t| matches!(t, Token::Match { .. })),
            "repetition must produce matches: {tokens:?}"
        );
    }

    #[test]
    fn roundtrip_empty_and_tiny() {
        for data in [&b""[..], b"a", b"ab", b"abc"] {
            assert_eq!(detokenize(&tokenize(data)), data);
        }
    }

    #[test]
    fn roundtrip_incompressible() {
        let mut rng = xpl_util::SplitMix64::new(99);
        let mut data = vec![0u8; 5000];
        rng.fill_bytes(&mut data);
        assert_eq!(detokenize(&tokenize(&data)), data);
    }

    #[test]
    fn overlapping_match_rle() {
        // "aaaa..." compresses via overlapping dist=1 matches.
        let data = vec![b'a'; 1000];
        let tokens = tokenize(&data);
        assert_eq!(detokenize(&tokens), data);
        assert!(
            tokens.len() < 20,
            "run should collapse, got {} tokens",
            tokens.len()
        );
    }

    #[test]
    fn long_repetition_capped_at_max_match() {
        let data = vec![b'x'; 10_000];
        let tokens = tokenize(&data);
        for t in &tokens {
            if let Token::Match { len, .. } = t {
                assert!((*len as usize) <= MAX_MATCH);
            }
        }
        assert_eq!(detokenize(&tokens), data);
    }

    #[test]
    fn distances_within_window() {
        // Repetition separated by more than the window cannot be matched.
        let mut data = vec![b'q'; 100];
        data.extend(std::iter::repeat_n(0u8, WINDOW_SIZE + 10));
        data.extend(std::iter::repeat_n(b'q', 100));
        let tokens = tokenize(&data);
        for t in &tokens {
            if let Token::Match { dist, .. } = t {
                assert!((*dist as usize) <= WINDOW_SIZE);
            }
        }
        assert_eq!(detokenize(&tokens), data);
    }

    #[test]
    fn text_compresses_well() {
        let text = "the quick brown fox jumps over the lazy dog. ".repeat(100);
        let tokens = tokenize(text.as_bytes());
        assert_eq!(detokenize(&tokens), text.as_bytes());
        // Token count should be far below input length.
        assert!(
            tokens.len() < text.len() / 4,
            "{} tokens for {} bytes",
            tokens.len(),
            text.len()
        );
    }
}
