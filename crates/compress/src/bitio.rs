//! LSB-first bit I/O as required by DEFLATE (RFC 1951 §3.1.1).
//!
//! Huffman codes are written most-significant-bit first *within the code*
//! but packed into bytes starting from the least significant bit; the
//! helpers here keep those two conventions separate ([`BitWriter::write_bits`]
//! for extra-bits fields, [`BitWriter::write_code`] for Huffman codes).

/// Bit-level writer producing a DEFLATE-conformant byte stream.
pub struct BitWriter {
    out: Vec<u8>,
    /// Bit accumulator; bits fill from the LSB upward.
    acc: u64,
    /// Number of valid bits in `acc`.
    nbits: u32,
}

impl Default for BitWriter {
    fn default() -> Self {
        Self::new()
    }
}

impl BitWriter {
    pub fn new() -> Self {
        BitWriter {
            out: Vec::new(),
            acc: 0,
            nbits: 0,
        }
    }

    /// Write `n` bits of `value` (LSB of `value` emitted first). Used for
    /// block headers and extra-bits fields.
    ///
    /// The accumulator holds fewer than 32 valid bits on entry, so a
    /// 32-bit value always fits in the 64-bit word; once 32 bits have
    /// accumulated they are flushed as one little-endian word instead of
    /// byte by byte.
    #[inline]
    pub fn write_bits(&mut self, value: u32, n: u32) {
        debug_assert!(n <= 32);
        debug_assert!(n == 32 || value < (1u32 << n));
        debug_assert!(self.nbits < 32);
        self.acc |= (value as u64) << self.nbits;
        self.nbits += n;
        if self.nbits >= 32 {
            self.out.extend_from_slice(&(self.acc as u32).to_le_bytes());
            self.acc >>= 32;
            self.nbits -= 32;
        }
    }

    /// Write a Huffman code of `len` bits. DEFLATE transmits Huffman codes
    /// MSB-first, so the code's bit order is reversed before packing.
    #[inline]
    pub fn write_code(&mut self, code: u32, len: u32) {
        let rev = reverse_bits(code, len);
        self.write_bits(rev, len);
    }

    /// Pad to a byte boundary with zero bits and drain the accumulator
    /// (stored-block alignment; `write_bytes` relies on the drain).
    pub fn align_byte(&mut self) {
        let pad = (8 - (self.nbits & 7)) & 7;
        if pad > 0 {
            self.write_bits(0, pad);
        }
        while self.nbits >= 8 {
            self.out.push(self.acc as u8);
            self.acc >>= 8;
            self.nbits -= 8;
        }
        debug_assert_eq!(self.nbits, 0);
        debug_assert_eq!(self.acc, 0);
    }

    /// Append raw bytes; caller must be byte-aligned.
    pub fn write_bytes(&mut self, data: &[u8]) {
        debug_assert_eq!(self.nbits, 0, "write_bytes requires byte alignment");
        self.out.extend_from_slice(data);
    }

    /// Flush any partial byte and return the stream.
    pub fn finish(mut self) -> Vec<u8> {
        self.align_byte();
        self.out
    }

    /// Bits written so far (for cost accounting when choosing block types).
    pub fn bit_len(&self) -> u64 {
        self.out.len() as u64 * 8 + self.nbits as u64
    }
}

/// Reverse the low `len` bits of `v`.
#[inline]
pub fn reverse_bits(v: u32, len: u32) -> u32 {
    let mut r = 0u32;
    for i in 0..len {
        r |= ((v >> i) & 1) << (len - 1 - i);
    }
    r
}

/// Bit-level reader over a DEFLATE byte stream.
pub struct BitReader<'a> {
    data: &'a [u8],
    pos: usize,
    acc: u64,
    nbits: u32,
}

/// Errors from bit-level reading.
#[derive(Debug, PartialEq, Eq)]
pub enum BitError {
    /// Ran off the end of the input.
    UnexpectedEof,
}

impl<'a> BitReader<'a> {
    pub fn new(data: &'a [u8]) -> Self {
        BitReader {
            data,
            pos: 0,
            acc: 0,
            nbits: 0,
        }
    }

    #[inline]
    fn refill(&mut self) {
        while self.nbits <= 56 && self.pos < self.data.len() {
            self.acc |= (self.data[self.pos] as u64) << self.nbits;
            self.pos += 1;
            self.nbits += 8;
        }
    }

    /// Read `n` bits, LSB-first.
    #[inline]
    pub fn read_bits(&mut self, n: u32) -> Result<u32, BitError> {
        debug_assert!(n <= 32);
        if self.nbits < n {
            self.refill();
            if self.nbits < n {
                return Err(BitError::UnexpectedEof);
            }
        }
        let mask = if n == 0 { 0 } else { (1u64 << n) - 1 };
        let v = (self.acc & mask) as u32;
        self.acc >>= n;
        self.nbits -= n;
        Ok(v)
    }

    /// Read a single bit.
    #[inline]
    pub fn read_bit(&mut self) -> Result<u32, BitError> {
        self.read_bits(1)
    }

    /// Discard bits to the next byte boundary.
    pub fn align_byte(&mut self) {
        let drop = self.nbits % 8;
        self.acc >>= drop;
        self.nbits -= drop;
    }

    /// Total bits consumed from the underlying slice so far.
    pub fn bits_consumed(&self) -> usize {
        self.pos * 8 - self.nbits as usize
    }

    /// Read raw bytes (must be byte-aligned).
    pub fn read_bytes(&mut self, n: usize) -> Result<Vec<u8>, BitError> {
        debug_assert_eq!(self.nbits % 8, 0);
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            let b = self.read_bits(8)?;
            out.push(b as u8);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_bits() {
        let mut w = BitWriter::new();
        w.write_bits(0b101, 3);
        w.write_bits(0b11110000, 8);
        w.write_bits(0x3FFF, 14);
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_bits(3).unwrap(), 0b101);
        assert_eq!(r.read_bits(8).unwrap(), 0b11110000);
        assert_eq!(r.read_bits(14).unwrap(), 0x3FFF);
    }

    #[test]
    fn code_is_msb_first() {
        // A 3-bit Huffman code 0b110 must appear reversed (0b011) in the
        // LSB-first packing.
        let mut w = BitWriter::new();
        w.write_code(0b110, 3);
        let bytes = w.finish();
        assert_eq!(bytes[0] & 0b111, 0b011);
    }

    #[test]
    fn reverse_bits_known() {
        assert_eq!(reverse_bits(0b1, 1), 0b1);
        assert_eq!(reverse_bits(0b100, 3), 0b001);
        assert_eq!(reverse_bits(0b1011, 4), 0b1101);
    }

    #[test]
    fn align_and_raw_bytes() {
        let mut w = BitWriter::new();
        w.write_bits(1, 1);
        w.align_byte();
        w.write_bytes(&[0xAB, 0xCD]);
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_bit().unwrap(), 1);
        r.align_byte();
        assert_eq!(r.read_bytes(2).unwrap(), vec![0xAB, 0xCD]);
    }

    #[test]
    fn eof_detected() {
        let mut r = BitReader::new(&[0xFF]);
        assert!(r.read_bits(8).is_ok());
        assert_eq!(r.read_bits(1), Err(BitError::UnexpectedEof));
    }

    #[test]
    fn bit_len_tracks() {
        let mut w = BitWriter::new();
        assert_eq!(w.bit_len(), 0);
        w.write_bits(0, 5);
        assert_eq!(w.bit_len(), 5);
        w.write_bits(0, 5);
        assert_eq!(w.bit_len(), 10);
    }
}
