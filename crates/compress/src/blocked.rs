//! Blocked random-access compression — a BGZF-style seekable container.
//!
//! Single-stream DEFLATE forces a reader to inflate from byte zero: no
//! parallelism, no range reads. This module splits input into fixed-size
//! blocks (default [`DEFAULT_BLOCK_SIZE`]), deflates each block as an
//! *independent* raw DEFLATE stream, and appends a CRC-checked block
//! index, so
//!
//! * decompression fans out across the thread pool one block per task
//!   ([`blocked_decompress_parallel`]), and
//! * any byte range maps to the minimal set of blocks
//!   ([`read_range`]) — the "virtual offset" of uncompressed byte `o`
//!   is simply block `o / block_size` because every block but the last
//!   holds exactly `block_size` bytes.
//!
//! # Container layout
//!
//! ```text
//! [magic "XBC1": 4][block_size: u32 LE]                      header (8)
//! [raw DEFLATE stream of block 0][… block 1]…                blocks
//! [comp_len: u32][uncomp_len: u32][crc32(uncomp): u32] × N   index (12·N)
//! [block_count: u32][total_uncompressed: u64 LE]
//! [crc32(index bytes): u32][end magic "XBE1": 4]             footer (20)
//! ```
//!
//! The index sits at the *end* so compression writes blocks straight
//! through; a reader finds it from the fixed-size footer. Every field a
//! range read touches is covered by a checksum: the index by the footer
//! CRC, each block's payload by its per-block CRC — so partial reads
//! validate exactly what they inflate, which whole-payload checksums
//! (gzip's trailer, the persist segment CRC) cannot do for a range.
//!
//! Corruption and truncation anywhere in the container surface as typed
//! [`BlockedError`]s, never a panic: the index is fully validated
//! (region sizes, offsets, CRC) before any block slice is formed.

use crate::deflate::{deflate, inflate, InflateError};
use crate::lz4::{lz4_compress, lz4_decompress, Lz4Error, MAX_LZ4_EXPANSION};
use rayon::prelude::*;
use xpl_util::Crc32;

/// Default uncompressed block size: 64 KiB, the BGZF sweet spot between
/// seek granularity and DEFLATE window utilization.
pub const DEFAULT_BLOCK_SIZE: usize = 64 * 1024;

const MAGIC: &[u8; 4] = b"XBC1";
const LZ4_MAGIC: &[u8; 4] = b"XBL1";
const END_MAGIC: &[u8; 4] = b"XBE1";
const HEADER: usize = 8;
const FOOTER: usize = 20;
const INDEX_ENTRY: usize = 12;

/// Upper bound on how much a raw DEFLATE stream can inflate: ~1032×
/// (one distance-1/length-258 match per ~2 bits of input, plus stream
/// framing). An index entry claiming more than this per compressed byte
/// describes bytes its block cannot contain — only a corrupt or hostile
/// index (the footer CRC is attacker-recomputable) can say that.
const MAX_INFLATE_RATIO: u64 = 1032;

/// The per-block compression algorithm a container was written with,
/// chosen by its leading magic. The layout (header, blocks, index,
/// footer) is identical for every inner codec; only the block streams
/// and the expansion-plausibility bound differ.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum InnerCodec {
    /// Raw DEFLATE blocks — the dense tier (magic `XBC1`).
    Deflate,
    /// LZ4-class blocks — the fast tier (magic `XBL1`).
    Lz4,
}

impl InnerCodec {
    fn magic(self) -> &'static [u8; 4] {
        match self {
            InnerCodec::Deflate => MAGIC,
            InnerCodec::Lz4 => LZ4_MAGIC,
        }
    }

    /// Maximum uncompressed-per-compressed-byte ratio a valid block of
    /// this codec can reach; an index claiming more is corrupt.
    fn max_expansion(self) -> u64 {
        match self {
            InnerCodec::Deflate => MAX_INFLATE_RATIO,
            InnerCodec::Lz4 => MAX_LZ4_EXPANSION,
        }
    }

    pub fn name(self) -> &'static str {
        match self {
            InnerCodec::Deflate => "blocked-deflate",
            InnerCodec::Lz4 => "blocked-lz4",
        }
    }

    fn compress_block(self, chunk: &[u8]) -> Vec<u8> {
        match self {
            InnerCodec::Deflate => deflate(chunk),
            InnerCodec::Lz4 => lz4_compress(chunk),
        }
    }
}

/// The inner codec of a container, by magic; `None` for anything else
/// (including legacy gzip).
pub fn inner_codec(bytes: &[u8]) -> Option<InnerCodec> {
    if bytes.len() < 4 {
        return None;
    }
    match &bytes[0..4] {
        m if m == MAGIC => Some(InnerCodec::Deflate),
        m if m == LZ4_MAGIC => Some(InnerCodec::Lz4),
        _ => None,
    }
}

/// Preallocation for a decode buffer: trust the index's claimed size
/// only up to a small multiple of the compressed input, so a corrupt or
/// hostile footer can never force a huge up-front allocation (e.g.
/// `total_len = u64::MAX` aborting in `Vec::with_capacity`). Payloads
/// that genuinely inflate further grow the buffer organically.
fn decode_capacity(claimed: u64, compressed_len: usize) -> usize {
    let plausible = (compressed_len as u64).saturating_mul(32).max(4096);
    claimed.min(plausible).min(isize::MAX as u64) as usize
}

/// Errors of the blocked format. Every decode failure is a value of
/// this type — corrupt or truncated input must never panic.
#[derive(Debug, PartialEq, Eq)]
pub enum BlockedError {
    /// The container does not start with the "XBC1" magic.
    BadMagic,
    /// Fewer bytes than the layout requires.
    Truncated { need: u64, have: u64 },
    /// The block index is internally inconsistent or fails its CRC.
    CorruptIndex(String),
    /// A block inflated to bytes whose CRC-32 does not match the index.
    BlockCrcMismatch { block: usize },
    /// A block inflated to the wrong number of bytes.
    BlockLenMismatch { block: usize, expect: u32, got: u64 },
    /// A block's DEFLATE stream is damaged.
    Inflate { block: usize, err: InflateError },
    /// A block's LZ4 stream is damaged.
    Lz4 { block: usize, err: Lz4Error },
}

impl std::fmt::Display for BlockedError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BlockedError::BadMagic => write!(f, "not a blocked container (bad magic)"),
            BlockedError::Truncated { need, have } => {
                write!(f, "truncated container: need {need} bytes, have {have}")
            }
            BlockedError::CorruptIndex(detail) => write!(f, "corrupt block index: {detail}"),
            BlockedError::BlockCrcMismatch { block } => {
                write!(f, "block {block}: CRC-32 mismatch")
            }
            BlockedError::BlockLenMismatch { block, expect, got } => {
                write!(
                    f,
                    "block {block}: inflated to {got} bytes, index says {expect}"
                )
            }
            BlockedError::Inflate { block, err } => {
                write!(f, "block {block}: inflate failed: {err:?}")
            }
            BlockedError::Lz4 { block, err } => {
                write!(f, "block {block}: lz4 decode failed: {err}")
            }
        }
    }
}

impl std::error::Error for BlockedError {}

/// One block's index entry, offsets resolved to absolute positions.
#[derive(Clone, Copy, Debug)]
pub struct BlockEntry {
    /// Absolute offset of the block's DEFLATE stream in the container.
    pub comp_off: u64,
    pub comp_len: u32,
    /// Offset of the block's first byte in the uncompressed stream.
    pub uncomp_off: u64,
    pub uncomp_len: u32,
    /// CRC-32 of the uncompressed block.
    pub crc: u32,
}

/// The parsed, validated block index of a container.
#[derive(Clone, Debug)]
pub struct BlockIndex {
    pub codec: InnerCodec,
    pub block_size: u32,
    pub total_len: u64,
    pub entries: Vec<BlockEntry>,
}

impl BlockIndex {
    /// Parse and fully validate a container's index (footer magic, CRC,
    /// region sizes, per-block offsets). After `parse` succeeds, every
    /// block slice the entries describe is in bounds.
    pub fn parse(data: &[u8]) -> Result<BlockIndex, BlockedError> {
        let have = data.len() as u64;
        if data.len() < HEADER + FOOTER {
            return Err(BlockedError::Truncated {
                need: (HEADER + FOOTER) as u64,
                have,
            });
        }
        let Some(codec) = inner_codec(data) else {
            return Err(BlockedError::BadMagic);
        };
        if &data[data.len() - 4..] != END_MAGIC {
            return Err(BlockedError::CorruptIndex("bad footer magic".into()));
        }
        let block_size = u32::from_le_bytes(data[4..8].try_into().unwrap());
        if block_size == 0 {
            return Err(BlockedError::CorruptIndex("block size is zero".into()));
        }
        let foot = data.len() - FOOTER;
        let block_count = u32::from_le_bytes(data[foot..foot + 4].try_into().unwrap()) as u64;
        let total_len = u64::from_le_bytes(data[foot + 4..foot + 12].try_into().unwrap());
        let index_crc = u32::from_le_bytes(data[foot + 12..foot + 16].try_into().unwrap());
        let index_len = block_count * INDEX_ENTRY as u64;
        let need = (HEADER + FOOTER) as u64 + index_len;
        if have < need {
            return Err(BlockedError::Truncated { need, have });
        }
        let index_start = foot - index_len as usize;
        let index_bytes = &data[index_start..foot];
        if Crc32::checksum(index_bytes) != index_crc {
            return Err(BlockedError::CorruptIndex("index CRC-32 mismatch".into()));
        }

        let mut entries = Vec::with_capacity(block_count as usize);
        let mut comp_off = HEADER as u64;
        let mut uncomp_off = 0u64;
        for i in 0..block_count as usize {
            let at = i * INDEX_ENTRY;
            let comp_len = u32::from_le_bytes(index_bytes[at..at + 4].try_into().unwrap());
            let uncomp_len = u32::from_le_bytes(index_bytes[at + 4..at + 8].try_into().unwrap());
            let crc = u32::from_le_bytes(index_bytes[at + 8..at + 12].try_into().unwrap());
            if comp_len == 0 {
                return Err(BlockedError::CorruptIndex(format!(
                    "block {i}: zero compressed length"
                )));
            }
            let full = i + 1 < block_count as usize;
            if full && uncomp_len != block_size {
                return Err(BlockedError::CorruptIndex(format!(
                    "block {i}: {uncomp_len} uncompressed bytes in a non-final block of size {block_size}"
                )));
            }
            if !full && (uncomp_len == 0 || uncomp_len > block_size) {
                return Err(BlockedError::CorruptIndex(format!(
                    "final block: {uncomp_len} uncompressed bytes vs block size {block_size}"
                )));
            }
            if uncomp_len as u64 > comp_len as u64 * codec.max_expansion() {
                return Err(BlockedError::CorruptIndex(format!(
                    "block {i}: {uncomp_len} uncompressed bytes from {comp_len} compressed \
                     exceeds {}'s maximum expansion",
                    codec.name()
                )));
            }
            entries.push(BlockEntry {
                comp_off,
                comp_len,
                uncomp_off,
                uncomp_len,
                crc,
            });
            comp_off += comp_len as u64;
            uncomp_off += uncomp_len as u64;
        }
        if comp_off != index_start as u64 {
            return Err(BlockedError::CorruptIndex(format!(
                "blocks region is {} bytes, index accounts for {}",
                index_start as u64 - HEADER as u64,
                comp_off - HEADER as u64
            )));
        }
        if uncomp_off != total_len {
            return Err(BlockedError::CorruptIndex(format!(
                "footer says {total_len} uncompressed bytes, entries sum to {uncomp_off}"
            )));
        }
        Ok(BlockIndex {
            codec,
            block_size,
            total_len,
            entries,
        })
    }

    /// Indices of the blocks a byte range touches (empty range or a
    /// start past the end touches none). Clamping mirrors slice
    /// semantics: `[start, min(start+len, total))`.
    pub fn blocks_for_range(&self, start: u64, len: u64) -> std::ops::Range<usize> {
        let end = start.saturating_add(len).min(self.total_len);
        if start >= end {
            return 0..0;
        }
        let first = (start / self.block_size as u64) as usize;
        let last = ((end - 1) / self.block_size as u64) as usize;
        first..last + 1
    }

    /// Compressed bytes a range read transfers: the touched blocks'
    /// DEFLATE streams plus the header, index and footer overhead —
    /// what an honest store charges for serving the range. An empty
    /// range (or a start past the end) touches no blocks and charges
    /// nothing, matching [`BlockIndex::blocks_for_range`].
    pub fn compressed_span_bytes(&self, start: u64, len: u64) -> u64 {
        let span = self.blocks_for_range(start, len);
        if span.is_empty() {
            return 0;
        }
        let blocks: u64 = self.entries[span].iter().map(|e| e.comp_len as u64).sum();
        blocks + (HEADER + FOOTER) as u64 + self.entries.len() as u64 * INDEX_ENTRY as u64
    }
}

/// `true` if `bytes` carries either blocked-container magic (DEFLATE or
/// LZ4 inner codec — the layout, and thus every reader, is shared).
pub fn is_blocked(bytes: &[u8]) -> bool {
    inner_codec(bytes).is_some()
}

/// Compress with the default block size (DEFLATE inner codec).
pub fn blocked_compress(data: &[u8]) -> Vec<u8> {
    blocked_compress_inner(data, DEFAULT_BLOCK_SIZE, InnerCodec::Deflate)
}

/// Compress `data` into a blocked-DEFLATE container with a chosen block
/// size.
pub fn blocked_compress_with(data: &[u8], block_size: usize) -> Vec<u8> {
    blocked_compress_inner(data, block_size, InnerCodec::Deflate)
}

/// Compress with the default block size and the LZ4 inner codec — the
/// fast tier.
pub fn blocked_compress_lz4(data: &[u8]) -> Vec<u8> {
    blocked_compress_inner(data, DEFAULT_BLOCK_SIZE, InnerCodec::Lz4)
}

/// Compress `data` into a blocked container, encoding blocks in
/// parallel across the rayon pool with the chosen inner codec.
pub fn blocked_compress_inner(data: &[u8], block_size: usize, codec: InnerCodec) -> Vec<u8> {
    assert!(block_size > 0 && block_size <= u32::MAX as usize);
    let compressed: Vec<(Vec<u8>, u32, u32)> = data
        .par_chunks(block_size)
        .map(|chunk| {
            (
                codec.compress_block(chunk),
                chunk.len() as u32,
                Crc32::checksum(chunk),
            )
        })
        .collect();
    let blocks_bytes: usize = compressed.iter().map(|(b, _, _)| b.len()).sum();
    let mut out =
        Vec::with_capacity(HEADER + blocks_bytes + compressed.len() * INDEX_ENTRY + FOOTER);
    out.extend_from_slice(codec.magic());
    out.extend_from_slice(&(block_size as u32).to_le_bytes());
    for (block, _, _) in &compressed {
        out.extend_from_slice(block);
    }
    let index_start = out.len();
    for (block, uncomp_len, crc) in &compressed {
        out.extend_from_slice(&(block.len() as u32).to_le_bytes());
        out.extend_from_slice(&uncomp_len.to_le_bytes());
        out.extend_from_slice(&crc.to_le_bytes());
    }
    let index_crc = Crc32::checksum(&out[index_start..]);
    out.extend_from_slice(&(compressed.len() as u32).to_le_bytes());
    out.extend_from_slice(&(data.len() as u64).to_le_bytes());
    out.extend_from_slice(&index_crc.to_le_bytes());
    out.extend_from_slice(END_MAGIC);
    out
}

/// Decode and CRC-check one block, dispatching on the container's
/// inner codec.
pub fn inflate_block(
    data: &[u8],
    index: &BlockIndex,
    block: usize,
) -> Result<Vec<u8>, BlockedError> {
    let e = &index.entries[block];
    let comp = &data[e.comp_off as usize..(e.comp_off + e.comp_len as u64) as usize];
    let out = match index.codec {
        InnerCodec::Deflate => inflate(comp).map_err(|err| BlockedError::Inflate { block, err })?,
        InnerCodec::Lz4 => lz4_decompress(comp, e.uncomp_len as u64)
            .map_err(|err| BlockedError::Lz4 { block, err })?,
    };
    if out.len() as u64 != e.uncomp_len as u64 {
        return Err(BlockedError::BlockLenMismatch {
            block,
            expect: e.uncomp_len,
            got: out.len() as u64,
        });
    }
    if Crc32::checksum(&out) != e.crc {
        return Err(BlockedError::BlockCrcMismatch { block });
    }
    Ok(out)
}

/// Decompress a whole container sequentially (the 1-thread reference
/// path; [`blocked_decompress_parallel`] must match it byte for byte).
pub fn blocked_decompress(data: &[u8]) -> Result<Vec<u8>, BlockedError> {
    let index = BlockIndex::parse(data)?;
    let mut out = Vec::with_capacity(decode_capacity(index.total_len, data.len()));
    for i in 0..index.entries.len() {
        out.extend_from_slice(&inflate_block(data, &index, i)?);
    }
    Ok(out)
}

/// Decompress a whole container, one block per pool task. Blocks are
/// independent DEFLATE streams, so inflation is embarrassingly parallel;
/// output order is restored by index, making the result byte-identical
/// at any thread count.
pub fn blocked_decompress_parallel(data: &[u8]) -> Result<Vec<u8>, BlockedError> {
    let index = BlockIndex::parse(data)?;
    let blocks: Vec<Result<Vec<u8>, BlockedError>> = (0..index.entries.len())
        .into_par_iter()
        .map(|i| inflate_block(data, &index, i))
        .collect();
    let mut out = Vec::with_capacity(decode_capacity(index.total_len, data.len()));
    for block in blocks {
        out.extend_from_slice(&block?);
    }
    Ok(out)
}

/// Read `[start, start+len)` of the uncompressed stream, inflating only
/// the blocks the range overlaps. Clamps like a slice: bytes past the
/// end are simply absent, so the result can be shorter than `len`.
pub fn read_range(data: &[u8], start: u64, len: u64) -> Result<Vec<u8>, BlockedError> {
    let index = BlockIndex::parse(data)?;
    read_range_indexed(data, &index, start, len)
}

/// [`read_range`] against an already-parsed index (amortizes parsing
/// across many reads of the same container).
pub fn read_range_indexed(
    data: &[u8],
    index: &BlockIndex,
    start: u64,
    len: u64,
) -> Result<Vec<u8>, BlockedError> {
    let end = start.saturating_add(len).min(index.total_len);
    if start >= end {
        return Ok(Vec::new());
    }
    let span = index.blocks_for_range(start, len);
    let mut out = Vec::with_capacity(decode_capacity(end - start, data.len()));
    for i in span {
        let e = &index.entries[i];
        let block = inflate_block(data, index, i)?;
        let from = start.saturating_sub(e.uncomp_off) as usize;
        let to = (end - e.uncomp_off).min(block.len() as u64) as usize;
        out.extend_from_slice(&block[from..to]);
    }
    Ok(out)
}

/// Inflate and CRC-check every block (the persist `deep_verify` sweep
/// over blocked payloads). Returns the number of blocks verified.
pub fn verify_blocks(data: &[u8]) -> Result<usize, BlockedError> {
    let index = BlockIndex::parse(data)?;
    for i in 0..index.entries.len() {
        inflate_block(data, &index, i)?;
    }
    Ok(index.entries.len())
}

/// Pre-resolved `xpl-obs` handles for blocked-codec random access.
/// Counters are cumulative across every reader wired to the same
/// registry, so callers no longer have to harvest per-reader fields —
/// the registry is the one source of truth. All deterministic: which
/// blocks a range read inflates is a pure function of the range and
/// the container geometry. `verify_blocks` (the audit sweep) bypasses
/// readers entirely and never moves these.
pub struct CodecObs {
    blocks_inflated: std::sync::Arc<xpl_obs::Counter>,
    inflated_bytes: std::sync::Arc<xpl_obs::Counter>,
    compressed_bytes_touched: std::sync::Arc<xpl_obs::Counter>,
}

impl CodecObs {
    /// Resolve (or re-use) the `codec.*` metric family in `reg`.
    pub fn new(reg: &xpl_obs::Registry) -> Self {
        use xpl_obs::Section;
        CodecObs {
            blocks_inflated: reg.counter("codec.blocks_inflated", Section::Det),
            inflated_bytes: reg.counter("codec.inflated_bytes", Section::Det),
            compressed_bytes_touched: reg.counter("codec.compressed_bytes_touched", Section::Det),
        }
    }
}

/// A random-access reader over one container that caches inflated
/// blocks, so overlapping reads (a binary search, a cluster walk) pay
/// each block's inflation once. Tracks distinct blocks inflated — the
/// honest "how much decompression did this range cost" metric — both
/// in per-reader accessors and, when an obs sink is attached, in
/// registry counters bumped incrementally at each cache miss.
pub struct BlockedReader<'a> {
    data: &'a [u8],
    index: BlockIndex,
    cache: std::collections::HashMap<usize, Vec<u8>>,
    obs: Option<std::sync::Arc<CodecObs>>,
}

impl<'a> BlockedReader<'a> {
    pub fn new(data: &'a [u8]) -> Result<BlockedReader<'a>, BlockedError> {
        Ok(BlockedReader {
            data,
            index: BlockIndex::parse(data)?,
            cache: std::collections::HashMap::new(),
            obs: None,
        })
    }

    /// Wire this reader's block accounting into a registry. The fixed
    /// container overhead (header, footer, index) is charged once, at
    /// attach time — per-block compressed bytes accrue on each miss,
    /// keeping the counter consistent with
    /// [`BlockedReader::compressed_bytes_touched`].
    pub fn attach_obs(&mut self, obs: std::sync::Arc<CodecObs>) {
        debug_assert!(self.cache.is_empty(), "attach before reading");
        obs.compressed_bytes_touched
            .add((HEADER + FOOTER) as u64 + self.index.entries.len() as u64 * INDEX_ENTRY as u64);
        self.obs = Some(obs);
    }

    pub fn index(&self) -> &BlockIndex {
        &self.index
    }

    pub fn total_len(&self) -> u64 {
        self.index.total_len
    }

    /// Distinct blocks inflated so far.
    pub fn blocks_inflated(&self) -> usize {
        self.cache.len()
    }

    /// Uncompressed bytes produced by the blocks inflated so far — the
    /// honest decompression-work figure a store charges time for.
    pub fn uncompressed_bytes_inflated(&self) -> u64 {
        self.cache.values().map(|b| b.len() as u64).sum()
    }

    /// Compressed bytes backing the blocks inflated so far (plus the
    /// container's fixed overhead) — what a store charges for the reads.
    pub fn compressed_bytes_touched(&self) -> u64 {
        let blocks: u64 = self
            .cache
            .keys()
            .map(|&i| self.index.entries[i].comp_len as u64)
            .sum();
        blocks + (HEADER + FOOTER) as u64 + self.index.entries.len() as u64 * INDEX_ENTRY as u64
    }

    /// Read `[start, start+len)` of the uncompressed stream (clamped),
    /// inflating only uncached overlapping blocks.
    pub fn read_at(&mut self, start: u64, len: u64) -> Result<Vec<u8>, BlockedError> {
        let end = start.saturating_add(len).min(self.index.total_len);
        if start >= end {
            return Ok(Vec::new());
        }
        let span = self.index.blocks_for_range(start, len);
        let mut out = Vec::with_capacity((end - start) as usize);
        for i in span {
            if !self.cache.contains_key(&i) {
                let block = inflate_block(self.data, &self.index, i)?;
                if let Some(o) = &self.obs {
                    o.blocks_inflated.inc();
                    o.inflated_bytes.add(block.len() as u64);
                    o.compressed_bytes_touched
                        .add(self.index.entries[i].comp_len as u64);
                }
                self.cache.insert(i, block);
            }
            let e = &self.index.entries[i];
            let block = &self.cache[&i];
            let from = start.saturating_sub(e.uncomp_off) as usize;
            let to = (end - e.uncomp_off).min(block.len() as u64) as usize;
            out.extend_from_slice(&block[from..to]);
        }
        Ok(out)
    }
}

// ---------------------------------------------------------------------
// The seekable codec abstraction.
// ---------------------------------------------------------------------

/// Codec-level errors: either format's failure, or bytes neither codec
/// claims.
#[derive(Debug, PartialEq, Eq)]
pub enum CodecError {
    Blocked(BlockedError),
    Gzip(crate::GzipError),
    /// The stream matches neither the blocked nor the gzip magic.
    UnknownFormat,
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::Blocked(e) => write!(f, "blocked codec: {e}"),
            CodecError::Gzip(e) => write!(f, "gzip codec: {e}"),
            CodecError::UnknownFormat => write!(f, "unknown compression format"),
        }
    }
}

impl std::error::Error for CodecError {}

impl From<BlockedError> for CodecError {
    fn from(e: BlockedError) -> Self {
        CodecError::Blocked(e)
    }
}

impl From<crate::GzipError> for CodecError {
    fn from(e: crate::GzipError) -> Self {
        CodecError::Gzip(e)
    }
}

/// A seekable block-stream codec: compress whole, decompress whole, or
/// serve a byte range of the uncompressed stream. Implementations are
/// stateless and shareable (`Send + Sync`).
pub trait BlockCodec: Send + Sync {
    fn name(&self) -> &'static str;
    fn compress(&self, data: &[u8]) -> Vec<u8>;
    fn decompress(&self, stream: &[u8]) -> Result<Vec<u8>, CodecError>;
    /// Bytes `[start, start+len)` of the uncompressed stream, clamped.
    fn read_range(&self, stream: &[u8], start: u64, len: u64) -> Result<Vec<u8>, CodecError>;
}

/// The blocked container codec (parallel inflate, real range reads).
pub struct BlockedDeflate {
    pub block_size: usize,
}

impl Default for BlockedDeflate {
    fn default() -> Self {
        BlockedDeflate {
            block_size: DEFAULT_BLOCK_SIZE,
        }
    }
}

impl BlockCodec for BlockedDeflate {
    fn name(&self) -> &'static str {
        "blocked-deflate"
    }

    fn compress(&self, data: &[u8]) -> Vec<u8> {
        blocked_compress_with(data, self.block_size)
    }

    fn decompress(&self, stream: &[u8]) -> Result<Vec<u8>, CodecError> {
        Ok(blocked_decompress_parallel(stream)?)
    }

    fn read_range(&self, stream: &[u8], start: u64, len: u64) -> Result<Vec<u8>, CodecError> {
        Ok(read_range(stream, start, len)?)
    }
}

/// The blocked container with the LZ4 inner codec — the hot tier:
/// decode runs several times faster than inflate at a worse ratio, and
/// range reads keep their CRC-checked per-block validation.
pub struct BlockedLz4 {
    pub block_size: usize,
}

impl Default for BlockedLz4 {
    fn default() -> Self {
        BlockedLz4 {
            block_size: DEFAULT_BLOCK_SIZE,
        }
    }
}

impl BlockCodec for BlockedLz4 {
    fn name(&self) -> &'static str {
        "blocked-lz4"
    }

    fn compress(&self, data: &[u8]) -> Vec<u8> {
        blocked_compress_inner(data, self.block_size, InnerCodec::Lz4)
    }

    fn decompress(&self, stream: &[u8]) -> Result<Vec<u8>, CodecError> {
        Ok(blocked_decompress_parallel(stream)?)
    }

    fn read_range(&self, stream: &[u8], start: u64, len: u64) -> Result<Vec<u8>, CodecError> {
        Ok(read_range(stream, start, len)?)
    }
}

/// The legacy single-stream gzip codec. Kept readable for containers
/// written before the blocked format existed; a range read must inflate
/// the whole stream and slice — the cost the blocked format removes.
pub struct LegacyGzip;

impl BlockCodec for LegacyGzip {
    fn name(&self) -> &'static str {
        "gzip"
    }

    fn compress(&self, data: &[u8]) -> Vec<u8> {
        crate::gzip_compress_parallel(data)
    }

    fn decompress(&self, stream: &[u8]) -> Result<Vec<u8>, CodecError> {
        Ok(crate::gzip_decompress(stream)?)
    }

    fn read_range(&self, stream: &[u8], start: u64, len: u64) -> Result<Vec<u8>, CodecError> {
        let full = crate::gzip_decompress(stream)?;
        let end = start.saturating_add(len).min(full.len() as u64);
        let start = start.min(end);
        Ok(full[start as usize..end as usize].to_vec())
    }
}

static BLOCKED: BlockedDeflate = BlockedDeflate {
    block_size: DEFAULT_BLOCK_SIZE,
};
static BLOCKED_LZ4: BlockedLz4 = BlockedLz4 {
    block_size: DEFAULT_BLOCK_SIZE,
};
static GZIP: LegacyGzip = LegacyGzip;

/// Identify the codec a stream was written with (by magic). A stream
/// shorter than any full magic — including every proper prefix of a
/// known magic — is [`CodecError::UnknownFormat`], never a misdetection:
/// dispatch requires the *complete* magic of exactly one codec.
pub fn codec_for(stream: &[u8]) -> Result<&'static dyn BlockCodec, CodecError> {
    match inner_codec(stream) {
        Some(InnerCodec::Deflate) => Ok(&BLOCKED),
        Some(InnerCodec::Lz4) => Ok(&BLOCKED_LZ4),
        None if stream.len() >= 2 && stream[0] == 0x1F && stream[1] == 0x8B => Ok(&GZIP),
        None => Err(CodecError::UnknownFormat),
    }
}

/// Look up a codec by CLI/config name. Accepts the canonical names
/// (`blocked-deflate`, `blocked-lz4`, `gzip`) and the short tier names
/// (`deflate`, `lz4`). `None` for anything else.
pub fn codec_by_name(name: &str) -> Option<&'static dyn BlockCodec> {
    match name.to_ascii_lowercase().as_str() {
        "blocked-deflate" | "deflate" => Some(&BLOCKED),
        "blocked-lz4" | "lz4" => Some(&BLOCKED_LZ4),
        "gzip" => Some(&GZIP),
        _ => None,
    }
}

/// Decompress a stream of any known format, dispatching on its magic —
/// the backward-compatibility read path.
pub fn decompress_auto(stream: &[u8]) -> Result<Vec<u8>, CodecError> {
    codec_for(stream)?.decompress(stream)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(n: usize) -> Vec<u8> {
        // Compressible but non-trivial: repeated vocabulary + counters.
        let mut out = Vec::with_capacity(n);
        let mut rng = xpl_util::SplitMix64::new(77);
        while out.len() < n {
            out.extend_from_slice(b"/usr/lib/pkg/");
            out.extend_from_slice(&(out.len() as u32).to_le_bytes());
            if rng.next_u64().is_multiple_of(4) {
                out.extend_from_slice(&[0u8; 17]);
            }
        }
        out.truncate(n);
        out
    }

    #[test]
    fn roundtrip_sizes() {
        for n in [
            0,
            1,
            100,
            DEFAULT_BLOCK_SIZE - 1,
            DEFAULT_BLOCK_SIZE,
            DEFAULT_BLOCK_SIZE + 1,
        ] {
            let data = sample(n);
            let c = blocked_compress(&data);
            assert_eq!(blocked_decompress(&c).unwrap(), data, "n={n}");
            assert_eq!(blocked_decompress_parallel(&c).unwrap(), data, "n={n}");
        }
    }

    #[test]
    fn multi_block_layout() {
        let data = sample(300_000);
        let c = blocked_compress(&data);
        let idx = BlockIndex::parse(&c).unwrap();
        assert_eq!(idx.entries.len(), 300_000usize.div_ceil(DEFAULT_BLOCK_SIZE));
        assert_eq!(idx.total_len, 300_000);
        assert!(idx.entries[..idx.entries.len() - 1]
            .iter()
            .all(|e| e.uncomp_len as usize == DEFAULT_BLOCK_SIZE));
    }

    #[test]
    fn range_reads_touch_minimal_blocks() {
        let data = sample(8 * 1024 * 1024);
        let c = blocked_compress(&data);
        let idx = BlockIndex::parse(&c).unwrap();
        assert_eq!(idx.entries.len(), 128);
        // A 64 KiB span straddles at most 2 of the 128 blocks.
        let span = idx.blocks_for_range(1_000_000, 64 * 1024);
        assert!(span.len() <= 2, "{span:?}");
        let got = read_range(&c, 1_000_000, 64 * 1024).unwrap();
        assert_eq!(got, &data[1_000_000..1_000_000 + 64 * 1024]);
        // Charged bytes are a small fraction of the container.
        assert!(idx.compressed_span_bytes(1_000_000, 64 * 1024) < c.len() as u64 / 8);
    }

    #[test]
    fn range_clamps_like_a_slice() {
        let data = sample(1000);
        let c = blocked_compress(&data);
        assert_eq!(read_range(&c, 900, 500).unwrap(), &data[900..]);
        assert_eq!(read_range(&c, 5000, 10).unwrap(), b"");
        assert_eq!(read_range(&c, 0, 0).unwrap(), b"");
        assert_eq!(read_range(&c, 0, u64::MAX).unwrap(), data);
    }

    #[test]
    fn reader_caches_blocks() {
        let data = sample(256 * 1024);
        let c = blocked_compress(&data);
        let mut r = BlockedReader::new(&c).unwrap();
        assert_eq!(r.read_at(0, 100).unwrap(), &data[..100]);
        assert_eq!(r.read_at(10, 50).unwrap(), &data[10..60]);
        assert_eq!(r.blocks_inflated(), 1, "second read hits the cache");
        r.read_at(200_000, 10_000).unwrap();
        assert!(r.blocks_inflated() <= 3);
        assert!(r.compressed_bytes_touched() < c.len() as u64);
    }

    #[test]
    fn corrupt_block_is_typed_error() {
        let data = sample(200_000);
        let mut c = blocked_compress(&data);
        // Flip a byte in the middle of the blocks region.
        c[HEADER + 1000] ^= 0x20;
        let err = blocked_decompress(&c).unwrap_err();
        assert!(
            matches!(
                err,
                BlockedError::BlockCrcMismatch { block: 0 }
                    | BlockedError::BlockLenMismatch { block: 0, .. }
                    | BlockedError::Inflate { block: 0, .. }
            ),
            "{err:?}"
        );
        // Other blocks still serve ranges.
        let got = read_range(&c, 150_000, 100).unwrap();
        assert_eq!(got, &data[150_000..150_100]);
    }

    #[test]
    fn codec_dispatch_and_legacy_compat() {
        let data = sample(200_000);
        let blocked = BlockedDeflate::default().compress(&data);
        let legacy = crate::gzip_compress_parallel(&data);
        assert_eq!(codec_for(&blocked).unwrap().name(), "blocked-deflate");
        assert_eq!(codec_for(&legacy).unwrap().name(), "gzip");
        assert_eq!(decompress_auto(&blocked).unwrap(), data);
        assert_eq!(decompress_auto(&legacy).unwrap(), data);
        assert_eq!(codec_for(b"????").err(), Some(CodecError::UnknownFormat));
        // Range reads work through both codecs (gzip pays full inflate).
        for codec in [codec_for(&blocked).unwrap(), codec_for(&legacy).unwrap()] {
            let stream = if codec.name() == "gzip" {
                &legacy
            } else {
                &blocked
            };
            assert_eq!(
                codec.read_range(stream, 12_345, 678).unwrap(),
                &data[12_345..12_345 + 678]
            );
        }
    }

    #[test]
    fn empty_span_charges_zero_bytes() {
        let data = sample(200_000);
        let c = blocked_compress(&data);
        let idx = BlockIndex::parse(&c).unwrap();
        // Regression: these used to charge header + footer + the whole
        // index even though no block is touched.
        assert_eq!(idx.compressed_span_bytes(0, 0), 0);
        assert_eq!(idx.compressed_span_bytes(1234, 0), 0);
        assert_eq!(idx.compressed_span_bytes(idx.total_len, 100), 0);
        assert_eq!(idx.compressed_span_bytes(u64::MAX, u64::MAX), 0);
        // Non-empty spans still pay block bytes plus container overhead.
        let one = idx.compressed_span_bytes(0, 1);
        assert!(one > (HEADER + FOOTER) as u64);
        assert!(one >= idx.entries[0].comp_len as u64);
    }

    /// A syntactically valid container whose single index entry claims
    /// `uncomp_len` for one small real DEFLATE block, with the index CRC
    /// recomputed the way an attacker would — only semantic validation
    /// can reject it.
    fn forged_container(uncomp_len: u32, total_len: u64) -> Vec<u8> {
        let block = deflate(&[b'a'; 100]);
        let mut out = Vec::new();
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&u32::MAX.to_le_bytes()); // huge block_size
        out.extend_from_slice(&block);
        let index_start = out.len();
        out.extend_from_slice(&(block.len() as u32).to_le_bytes());
        out.extend_from_slice(&uncomp_len.to_le_bytes());
        out.extend_from_slice(&Crc32::checksum(&[b'a'; 100]).to_le_bytes());
        let index_crc = Crc32::checksum(&out[index_start..]);
        out.extend_from_slice(&1u32.to_le_bytes());
        out.extend_from_slice(&total_len.to_le_bytes());
        out.extend_from_slice(&index_crc.to_le_bytes());
        out.extend_from_slice(END_MAGIC);
        out
    }

    #[test]
    fn hostile_footer_is_typed_error_not_huge_preallocation() {
        // Regression: the index claims ~4 GiB uncompressed from a
        // ~dozen-byte block. Pre-fix, parse accepted this and every
        // decompress path did `Vec::with_capacity(total_len)` straight
        // off the footer — a multi-GiB preallocation (abort under a
        // memory limit) before any semantic validation ran.
        let c = forged_container(u32::MAX, u32::MAX as u64);
        for err in [
            BlockIndex::parse(&c).map(|_| ()).unwrap_err(),
            blocked_decompress(&c).map(|_| ()).unwrap_err(),
            blocked_decompress_parallel(&c).map(|_| ()).unwrap_err(),
            read_range(&c, 0, 10).map(|_| ()).unwrap_err(),
        ] {
            assert!(matches!(err, BlockedError::CorruptIndex(_)), "{err:?}");
        }
        // A footer whose total_len disagrees with the entry sum is also
        // a typed error (u64::MAX never reaches an allocation).
        let c = forged_container(100, u64::MAX);
        assert!(matches!(
            BlockIndex::parse(&c),
            Err(BlockedError::CorruptIndex(_))
        ));
    }

    #[test]
    fn decode_capacity_is_bounded_by_input() {
        // Even if a claimed size got past parsing, preallocation is
        // clamped to a small multiple of the compressed input.
        assert_eq!(decode_capacity(u64::MAX, 1000), 32_000);
        assert_eq!(decode_capacity(100, 1000), 100);
        assert_eq!(decode_capacity(10_000, 10), 4096);
    }

    #[test]
    fn verify_blocks_counts_and_detects() {
        let data = sample(200_000);
        let c = blocked_compress(&data);
        assert_eq!(verify_blocks(&c).unwrap(), 4);
        let mut bad = c.clone();
        bad[HEADER + 5] ^= 0x01;
        assert!(verify_blocks(&bad).is_err());
    }

    #[test]
    fn lz4_container_roundtrips_and_serves_ranges() {
        for n in [
            0,
            1,
            DEFAULT_BLOCK_SIZE - 1,
            DEFAULT_BLOCK_SIZE,
            DEFAULT_BLOCK_SIZE + 1,
            300_000,
        ] {
            let data = sample(n);
            let c = blocked_compress_lz4(&data);
            assert_eq!(inner_codec(&c), Some(InnerCodec::Lz4), "n={n}");
            assert!(is_blocked(&c));
            assert_eq!(blocked_decompress(&c).unwrap(), data, "n={n}");
            assert_eq!(blocked_decompress_parallel(&c).unwrap(), data, "n={n}");
        }
        let data = sample(500_000);
        let c = blocked_compress_lz4(&data);
        let idx = BlockIndex::parse(&c).unwrap();
        assert_eq!(idx.codec, InnerCodec::Lz4);
        // Range reads inflate only the touched blocks, same as DEFLATE.
        let got = read_range(&c, 123_456, 10_000).unwrap();
        assert_eq!(got, &data[123_456..133_456]);
        assert!(idx.blocks_for_range(123_456, 10_000).len() <= 2);
        let mut r = BlockedReader::new(&c).unwrap();
        assert_eq!(r.read_at(400_000, 64).unwrap(), &data[400_000..400_064]);
        assert!(r.blocks_inflated() <= 2);
        assert_eq!(verify_blocks(&c).unwrap(), idx.entries.len());
    }

    #[test]
    fn lz4_container_corruption_and_truncation_are_typed() {
        let data = sample(150_000);
        let c = blocked_compress_lz4(&data);
        // A flipped block byte is caught by the per-block checks even
        // when the damaged stream still decodes (CRC backstop).
        let mut bad = c.clone();
        bad[HEADER + 977] ^= 0x40;
        let err = blocked_decompress(&bad).unwrap_err();
        assert!(
            matches!(
                err,
                BlockedError::Lz4 { block: 0, .. }
                    | BlockedError::BlockCrcMismatch { block: 0 }
                    | BlockedError::BlockLenMismatch { block: 0, .. }
            ),
            "{err:?}"
        );
        // Every truncation of the container is a typed error: the index
        // and footer live at the end, so no prefix parses.
        let small = blocked_compress_lz4(&sample(3000));
        for cut in 0..small.len() {
            let err = blocked_decompress(&small[..cut]).unwrap_err();
            assert!(
                matches!(
                    err,
                    BlockedError::BadMagic
                        | BlockedError::Truncated { .. }
                        | BlockedError::CorruptIndex(_)
                ),
                "cut={cut}: {err:?}"
            );
        }
    }

    #[test]
    fn codec_magic_prefixes_are_typed_errors_never_misdetected() {
        // Satellite: every proper prefix of every known magic — blocked
        // DEFLATE ("XBC1"), blocked LZ4 ("XBL1"), gzip (0x1F 0x8B) —
        // must surface as a typed error from both `codec_for` and
        // `decompress_auto`. A gzip prefix of length 1 must not be
        // "detected" as gzip; a 3-byte "XBC" must not be blocked.
        let magics: [&[u8]; 3] = [MAGIC, LZ4_MAGIC, &[0x1F, 0x8B]];
        for magic in magics {
            for take in 0..magic.len() {
                let prefix = &magic[..take];
                assert_eq!(
                    codec_for(prefix).err(),
                    Some(CodecError::UnknownFormat),
                    "prefix {prefix:?} of {magic:?} must be UnknownFormat"
                );
                assert_eq!(
                    decompress_auto(prefix).err(),
                    Some(CodecError::UnknownFormat),
                    "prefix {prefix:?} of {magic:?} must not decompress"
                );
            }
            // The complete magic alone dispatches, then fails typed in
            // the codec (truncated container / truncated gzip) — never
            // a panic, never Ok.
            let whole = magic;
            match codec_for(whole) {
                Ok(codec) => {
                    let err = codec.decompress(whole).unwrap_err();
                    assert!(
                        matches!(err, CodecError::Blocked(_) | CodecError::Gzip(_)),
                        "{err:?}"
                    );
                }
                Err(e) => panic!("complete magic {whole:?} must dispatch, got {e:?}"),
            }
        }
    }

    #[test]
    fn codec_by_name_resolves_tiers() {
        assert_eq!(
            codec_by_name("blocked-deflate").unwrap().name(),
            "blocked-deflate"
        );
        assert_eq!(codec_by_name("deflate").unwrap().name(), "blocked-deflate");
        assert_eq!(codec_by_name("LZ4").unwrap().name(), "blocked-lz4");
        assert_eq!(codec_by_name("blocked-lz4").unwrap().name(), "blocked-lz4");
        assert_eq!(codec_by_name("gzip").unwrap().name(), "gzip");
        assert!(codec_by_name("zstd").is_none());
        assert!(codec_by_name("").is_none());
    }

    #[test]
    fn lz4_codec_dispatch_roundtrip() {
        let data = sample(200_000);
        let fast = BlockedLz4::default().compress(&data);
        assert_eq!(codec_for(&fast).unwrap().name(), "blocked-lz4");
        assert_eq!(decompress_auto(&fast).unwrap(), data);
        assert_eq!(
            codec_for(&fast)
                .unwrap()
                .read_range(&fast, 9_876, 543)
                .unwrap(),
            &data[9_876..9_876 + 543]
        );
        // The three formats stay mutually distinguishable.
        let dense = blocked_compress(&data);
        let legacy = crate::gzip_compress_parallel(&data);
        assert_eq!(codec_for(&dense).unwrap().name(), "blocked-deflate");
        assert_eq!(codec_for(&legacy).unwrap().name(), "gzip");
        // LZ4 trades ratio for decode speed: the fast container may be
        // larger, but both reproduce the bytes.
        assert_eq!(
            decompress_auto(&dense).unwrap(),
            decompress_auto(&fast).unwrap()
        );
    }
}
