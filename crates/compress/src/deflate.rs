//! DEFLATE (RFC 1951) encoder and decoder.
//!
//! The encoder tokenizes with [`crate::lz77`], then emits whichever of the
//! three block types (stored / fixed Huffman / dynamic Huffman) is smallest
//! for the data. The decoder implements the full specification and is used
//! both by tests (round-trip) and by the gzip layer.

use crate::bitio::{BitReader, BitWriter};
use crate::huffman::{build_lengths, canonical_codes, HuffError, HuffmanDecoder};
use crate::lz77::{self, Token};

/// Length-code table: `(code, extra_bits, base_length)` for codes 257–285.
const LENGTH_CODES: [(u16, u8, u16); 29] = [
    (257, 0, 3),
    (258, 0, 4),
    (259, 0, 5),
    (260, 0, 6),
    (261, 0, 7),
    (262, 0, 8),
    (263, 0, 9),
    (264, 0, 10),
    (265, 1, 11),
    (266, 1, 13),
    (267, 1, 15),
    (268, 1, 17),
    (269, 2, 19),
    (270, 2, 23),
    (271, 2, 27),
    (272, 2, 31),
    (273, 3, 35),
    (274, 3, 43),
    (275, 3, 51),
    (276, 3, 59),
    (277, 4, 67),
    (278, 4, 83),
    (279, 4, 99),
    (280, 4, 115),
    (281, 5, 131),
    (282, 5, 163),
    (283, 5, 195),
    (284, 5, 227),
    (285, 0, 258),
];

/// Distance-code table: `(extra_bits, base_distance)` for codes 0–29.
const DIST_CODES: [(u8, u16); 30] = [
    (0, 1),
    (0, 2),
    (0, 3),
    (0, 4),
    (1, 5),
    (1, 7),
    (2, 9),
    (2, 13),
    (3, 17),
    (3, 25),
    (4, 33),
    (4, 49),
    (5, 65),
    (5, 97),
    (6, 129),
    (6, 193),
    (7, 257),
    (7, 385),
    (8, 513),
    (8, 769),
    (9, 1025),
    (9, 1537),
    (10, 2049),
    (10, 3073),
    (11, 4097),
    (11, 6145),
    (12, 8193),
    (12, 12289),
    (13, 16385),
    (13, 24577),
];

/// Transmission order of code-length-code lengths (RFC 1951 §3.2.7).
const CL_ORDER: [usize; 19] = [
    16, 17, 18, 0, 8, 7, 9, 6, 10, 5, 11, 4, 12, 3, 13, 2, 14, 1, 15,
];

const EOB: usize = 256;

/// `LEN_TO_CODE[len - 3]` = `(code, extra_bits, base)` — O(1) lookup for
/// every representable match length, replacing the per-token scan.
const LEN_TO_CODE: [(u16, u8, u16); 256] = {
    let mut t = [(0u16, 0u8, 0u16); 256];
    let mut i = 0;
    while i < 256 {
        let len = (i + 3) as u16;
        let mut j = LENGTH_CODES.len() - 1;
        loop {
            let (code, extra, base) = LENGTH_CODES[j];
            if len >= base {
                t[i] = (code, extra, base);
                break;
            }
            j -= 1;
        }
        i += 1;
    }
    t
};

/// zlib-style two-level distance bucket: `d <= 256` indexes the first
/// half directly; above that, code boundaries are multiples of 128, so
/// `(d - 1) >> 7` picks the bucket.
const DIST_BUCKET: [u8; 512] = {
    let mut t = [0u8; 512];
    let mut i = 0;
    while i < 512 {
        let d = if i < 256 {
            (i + 1) as u16
        } else {
            // Any distance in the bucket maps to the same code; use the
            // largest (capped at the 32 KiB window) so the scan below
            // lands on it.
            let hi = ((i - 256) << 7) as u32 + 128;
            if hi > 32768 {
                32768u16
            } else {
                hi as u16
            }
        };
        let mut j = DIST_CODES.len() - 1;
        loop {
            let (_, base) = DIST_CODES[j];
            if d >= base {
                t[i] = j as u8;
                break;
            }
            j -= 1;
        }
        i += 1;
    }
    t
};

#[inline]
fn length_to_code(len: u16) -> (u16, u8, u16) {
    let (code, extra, base) = LEN_TO_CODE[(len - 3) as usize];
    (code, extra, len - base)
}

#[inline]
fn dist_to_code(dist: u16) -> (u16, u8, u16) {
    let code = if dist <= 256 {
        DIST_BUCKET[(dist - 1) as usize]
    } else {
        DIST_BUCKET[256 + ((dist as usize - 1) >> 7)]
    } as usize;
    let (extra, base) = DIST_CODES[code];
    (code as u16, extra, dist - base)
}

fn fixed_lit_lengths() -> Vec<u32> {
    let mut l = vec![0u32; 288];
    l[0..144].fill(8);
    l[144..256].fill(9);
    l[256..280].fill(7);
    l[280..288].fill(8);
    l
}

fn fixed_dist_lengths() -> Vec<u32> {
    vec![5u32; 32]
}

/// Compress `data` into a raw DEFLATE stream.
pub fn deflate(data: &[u8]) -> Vec<u8> {
    let tokens = lz77::tokenize(data);
    let mut w = BitWriter::new();
    emit_block(&mut w, data, &tokens, true);
    w.finish()
}

/// Histogram of literal/length and distance code usage for a token stream.
fn token_freqs(tokens: &[Token]) -> (Vec<u32>, Vec<u32>) {
    let mut lit = vec![0u32; 286];
    let mut dist = vec![0u32; 30];
    for t in tokens {
        match *t {
            Token::Literal(b) => lit[b as usize] += 1,
            Token::Match { len, dist: d } => {
                lit[length_to_code(len).0 as usize] += 1;
                dist[dist_to_code(d).0 as usize] += 1;
            }
        }
    }
    lit[EOB] += 1;
    (lit, dist)
}

/// Cost in bits of emitting a token stream with the given histograms
/// under the given code lengths. Pure arithmetic over the histograms —
/// no second pass over the tokens. (The EOB symbol is already counted in
/// `lit_f` by [`token_freqs`].)
fn cost_from_freqs(lit_f: &[u32], dist_f: &[u32], lit_len: &[u32], dist_len: &[u32]) -> u64 {
    let mut bits = 0u64;
    for (&f, &l) in lit_f.iter().zip(lit_len) {
        bits += f as u64 * l as u64;
    }
    for (k, &(_, extra, _)) in LENGTH_CODES.iter().enumerate() {
        bits += lit_f[257 + k] as u64 * extra as u64;
    }
    for (c, &(extra, _)) in DIST_CODES.iter().enumerate() {
        bits += dist_f[c] as u64 * (dist_len[c] as u64 + extra as u64);
    }
    bits
}

/// Code-length alphabet symbols after run-length encoding.
enum ClSym {
    /// Emit a literal code length 0–15.
    Len(u32),
    /// Code 16: repeat previous length, 3–6 times (2 extra bits).
    Rep(u32),
    /// Code 17: run of zeros, 3–10 (3 extra bits).
    Zeros(u32),
    /// Code 18: run of zeros, 11–138 (7 extra bits).
    ZerosLong(u32),
}

fn rle_code_lengths(all: &[u32]) -> Vec<ClSym> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < all.len() {
        let v = all[i];
        let mut run = 1;
        while i + run < all.len() && all[i + run] == v {
            run += 1;
        }
        if v == 0 {
            let mut left = run;
            while left >= 11 {
                let take = left.min(138);
                out.push(ClSym::ZerosLong(take as u32));
                left -= take;
            }
            if left >= 3 {
                out.push(ClSym::Zeros(left as u32));
                left = 0;
            }
            for _ in 0..left {
                out.push(ClSym::Len(0));
            }
        } else {
            out.push(ClSym::Len(v));
            let mut left = run - 1;
            while left >= 3 {
                let take = left.min(6);
                out.push(ClSym::Rep(take as u32));
                left -= take;
            }
            for _ in 0..left {
                out.push(ClSym::Len(v));
            }
        }
        i += run;
    }
    out
}

fn emit_tokens(w: &mut BitWriter, tokens: &[Token], lit: &[(u32, u32)], dist: &[(u32, u32)]) {
    // Reverse each code's bit order once per block instead of once per
    // emitted symbol (DEFLATE transmits Huffman codes MSB-first inside
    // the LSB-first packing); the token loop then uses plain write_bits.
    let rev = |codes: &[(u32, u32)]| -> Vec<(u32, u32)> {
        codes
            .iter()
            .map(|&(c, l)| (crate::bitio::reverse_bits(c, l), l))
            .collect()
    };
    let lit = rev(lit);
    let dist = rev(dist);
    for t in tokens {
        match *t {
            Token::Literal(b) => {
                let (c, l) = lit[b as usize];
                w.write_bits(c, l);
            }
            Token::Match { len, dist: d } => {
                let (lc, le, lx) = length_to_code(len);
                let (c, l) = lit[lc as usize];
                w.write_bits(c, l);
                if le > 0 {
                    w.write_bits(lx as u32, le as u32);
                }
                let (dc, de, dx) = dist_to_code(d);
                let (c, l) = dist[dc as usize];
                w.write_bits(c, l);
                if de > 0 {
                    w.write_bits(dx as u32, de as u32);
                }
            }
        }
    }
    let (c, l) = lit[EOB];
    w.write_bits(c, l);
}

fn emit_block(w: &mut BitWriter, data: &[u8], tokens: &[Token], bfinal: bool) {
    let (lit_f, dist_f) = token_freqs(tokens);
    let mut lit_len = build_lengths(&lit_f, 15);
    let mut dist_len = build_lengths(&dist_f, 15);
    // A block with no matches still must transmit a (possibly incomplete)
    // distance code; one 1-bit code is the convention.
    if dist_len.iter().all(|&l| l == 0) {
        dist_len[0] = 1;
    }
    lit_len.resize(286, 0);
    dist_len.resize(30, 0);

    // Dynamic header cost.
    let hlit = (257..=286)
        .rev()
        .find(|&n| n == 257 || lit_len[n - 1] > 0)
        .unwrap_or(257);
    let hdist = (1..=30)
        .rev()
        .find(|&n| n == 1 || dist_len[n - 1] > 0)
        .unwrap_or(1);
    let mut combined: Vec<u32> = Vec::with_capacity(hlit + hdist);
    combined.extend_from_slice(&lit_len[..hlit]);
    combined.extend_from_slice(&dist_len[..hdist]);
    let cl_syms = rle_code_lengths(&combined);
    let mut cl_freq = vec![0u32; 19];
    for s in &cl_syms {
        match s {
            ClSym::Len(v) => cl_freq[*v as usize] += 1,
            ClSym::Rep(_) => cl_freq[16] += 1,
            ClSym::Zeros(_) => cl_freq[17] += 1,
            ClSym::ZerosLong(_) => cl_freq[18] += 1,
        }
    }
    let cl_len = build_lengths(&cl_freq, 7);
    let hclen = (4..=19)
        .rev()
        .find(|&n| n == 4 || cl_len[CL_ORDER[n - 1]] > 0)
        .unwrap_or(4);
    let mut dyn_header_bits = 5 + 5 + 4 + 3 * hclen as u64;
    for s in &cl_syms {
        dyn_header_bits += match s {
            ClSym::Len(v) => cl_len[*v as usize] as u64,
            ClSym::Rep(_) => cl_len[16] as u64 + 2,
            ClSym::Zeros(_) => cl_len[17] as u64 + 3,
            ClSym::ZerosLong(_) => cl_len[18] as u64 + 7,
        };
    }
    let dyn_bits = dyn_header_bits + cost_from_freqs(&lit_f, &dist_f, &lit_len, &dist_len);

    let fixed_lit = fixed_lit_lengths();
    let fixed_dist = fixed_dist_lengths();
    let fixed_bits = cost_from_freqs(&lit_f, &dist_f, &fixed_lit, &fixed_dist);

    // Stored: 3-bit header + pad + per-chunk 4-byte LEN/NLEN + raw bytes.
    let chunks = data.len().div_ceil(65_535).max(1);
    let stored_bits = (chunks as u64) * (3 + 32) + 8 + (data.len() as u64) * 8;

    if stored_bits < dyn_bits.min(fixed_bits) + 3 {
        emit_stored(w, data, bfinal);
    } else if fixed_bits <= dyn_bits {
        w.write_bits(bfinal as u32, 1);
        w.write_bits(1, 2); // fixed Huffman
        emit_tokens(
            w,
            tokens,
            &canonical_codes(&fixed_lit),
            &canonical_codes(&fixed_dist),
        );
    } else {
        w.write_bits(bfinal as u32, 1);
        w.write_bits(2, 2); // dynamic Huffman
        w.write_bits((hlit - 257) as u32, 5);
        w.write_bits((hdist - 1) as u32, 5);
        w.write_bits((hclen - 4) as u32, 4);
        for &idx in CL_ORDER.iter().take(hclen) {
            w.write_bits(cl_len[idx], 3);
        }
        let cl_codes = canonical_codes(&cl_len);
        for s in &cl_syms {
            match s {
                ClSym::Len(v) => {
                    let (c, l) = cl_codes[*v as usize];
                    w.write_code(c, l);
                }
                ClSym::Rep(n) => {
                    let (c, l) = cl_codes[16];
                    w.write_code(c, l);
                    w.write_bits(n - 3, 2);
                }
                ClSym::Zeros(n) => {
                    let (c, l) = cl_codes[17];
                    w.write_code(c, l);
                    w.write_bits(n - 3, 3);
                }
                ClSym::ZerosLong(n) => {
                    let (c, l) = cl_codes[18];
                    w.write_code(c, l);
                    w.write_bits(n - 11, 7);
                }
            }
        }
        emit_tokens(
            w,
            tokens,
            &canonical_codes(&lit_len),
            &canonical_codes(&dist_len),
        );
    }
}

fn emit_stored(w: &mut BitWriter, data: &[u8], bfinal: bool) {
    let mut chunks: Vec<&[u8]> = data.chunks(65_535).collect();
    if chunks.is_empty() {
        chunks.push(&[]);
    }
    let last = chunks.len() - 1;
    for (i, chunk) in chunks.iter().enumerate() {
        w.write_bits((bfinal && i == last) as u32, 1);
        w.write_bits(0, 2);
        w.align_byte();
        let len = chunk.len() as u16;
        w.write_bytes(&len.to_le_bytes());
        w.write_bytes(&(!len).to_le_bytes());
        w.write_bytes(chunk);
    }
}

/// Decoder errors.
#[derive(Debug, PartialEq, Eq)]
pub enum InflateError {
    UnexpectedEof,
    /// LEN/NLEN mismatch in a stored block.
    StoredLenMismatch,
    /// Reserved block type 3.
    BadBlockType,
    /// Corrupt Huffman table.
    BadTable,
    /// Symbol or distance out of range.
    BadSymbol,
    /// Back-reference before start of output.
    BadDistance,
}

impl From<crate::bitio::BitError> for InflateError {
    fn from(_: crate::bitio::BitError) -> Self {
        InflateError::UnexpectedEof
    }
}

impl From<HuffError> for InflateError {
    fn from(e: HuffError) -> Self {
        match e {
            HuffError::Eof => InflateError::UnexpectedEof,
            HuffError::InvalidTable => InflateError::BadTable,
            HuffError::InvalidCode => InflateError::BadSymbol,
        }
    }
}

/// Decompress a raw DEFLATE stream.
pub fn inflate(data: &[u8]) -> Result<Vec<u8>, InflateError> {
    let mut r = BitReader::new(data);
    inflate_from(&mut r)
}

/// Decompress from an existing bit reader (gzip layer shares the reader).
pub fn inflate_from(r: &mut BitReader<'_>) -> Result<Vec<u8>, InflateError> {
    let mut out: Vec<u8> = Vec::new();
    loop {
        let bfinal = r.read_bit()?;
        let btype = r.read_bits(2)?;
        match btype {
            0 => {
                r.align_byte();
                let len = r.read_bits(16)? as usize;
                let nlen = r.read_bits(16)? as usize;
                if len != (!nlen & 0xFFFF) {
                    return Err(InflateError::StoredLenMismatch);
                }
                let bytes = r.read_bytes(len)?;
                out.extend_from_slice(&bytes);
            }
            1 => {
                let lit = HuffmanDecoder::new(&fixed_lit_lengths())?;
                let dist = HuffmanDecoder::new(&fixed_dist_lengths())?;
                inflate_huffman_block(r, &lit, Some(&dist), &mut out)?;
            }
            2 => {
                let hlit = r.read_bits(5)? as usize + 257;
                let hdist = r.read_bits(5)? as usize + 1;
                let hclen = r.read_bits(4)? as usize + 4;
                let mut cl_len = vec![0u32; 19];
                for &idx in CL_ORDER.iter().take(hclen) {
                    cl_len[idx] = r.read_bits(3)?;
                }
                let cl_dec = HuffmanDecoder::new(&cl_len)?;
                let mut lengths = Vec::with_capacity(hlit + hdist);
                while lengths.len() < hlit + hdist {
                    let sym = cl_dec.decode(r)?;
                    match sym {
                        0..=15 => lengths.push(sym),
                        16 => {
                            let &prev = lengths.last().ok_or(InflateError::BadSymbol)?;
                            let n = r.read_bits(2)? + 3;
                            for _ in 0..n {
                                lengths.push(prev);
                            }
                        }
                        17 => {
                            let n = r.read_bits(3)? + 3;
                            lengths.resize(lengths.len() + n as usize, 0);
                        }
                        18 => {
                            let n = r.read_bits(7)? + 11;
                            lengths.resize(lengths.len() + n as usize, 0);
                        }
                        _ => return Err(InflateError::BadSymbol),
                    }
                }
                if lengths.len() != hlit + hdist {
                    return Err(InflateError::BadTable);
                }
                let lit_lengths = &lengths[..hlit];
                let dist_lengths = &lengths[hlit..];
                let lit = HuffmanDecoder::new(lit_lengths)?;
                let dist = if dist_lengths.iter().any(|&l| l > 0) {
                    Some(HuffmanDecoder::new(dist_lengths)?)
                } else {
                    None
                };
                inflate_huffman_block(r, &lit, dist.as_ref(), &mut out)?;
            }
            _ => return Err(InflateError::BadBlockType),
        }
        if bfinal == 1 {
            return Ok(out);
        }
    }
}

fn inflate_huffman_block(
    r: &mut BitReader<'_>,
    lit: &HuffmanDecoder,
    dist: Option<&HuffmanDecoder>,
    out: &mut Vec<u8>,
) -> Result<(), InflateError> {
    loop {
        let sym = lit.decode(r)?;
        match sym {
            0..=255 => out.push(sym as u8),
            256 => return Ok(()),
            257..=285 => {
                let (_, extra, base) = LENGTH_CODES[(sym - 257) as usize];
                let len = base as usize + r.read_bits(extra as u32)? as usize;
                let dist_dec = dist.ok_or(InflateError::BadSymbol)?;
                let dsym = dist_dec.decode(r)?;
                if dsym >= 30 {
                    return Err(InflateError::BadSymbol);
                }
                let (dextra, dbase) = DIST_CODES[dsym as usize];
                let d = dbase as usize + r.read_bits(dextra as u32)? as usize;
                if d > out.len() {
                    return Err(InflateError::BadDistance);
                }
                crate::lz77::copy_back_reference(out, d, len);
            }
            _ => return Err(InflateError::BadSymbol),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(data: &[u8]) {
        let compressed = deflate(data);
        let back = inflate(&compressed).expect("inflate");
        assert_eq!(back, data, "roundtrip mismatch for {} bytes", data.len());
    }

    #[test]
    fn roundtrip_empty() {
        roundtrip(b"");
    }

    #[test]
    fn roundtrip_small_strings() {
        roundtrip(b"a");
        roundtrip(b"hello world");
        roundtrip(b"aaaaaaaaaaaaaaaaaaaaaaaaaaaa");
    }

    #[test]
    fn roundtrip_text() {
        let text = "Infrastructure-as-a-service Clouds concurrently accommodate \
                    diverse sets of user requests, requiring an efficient strategy \
                    for storing and retrieving virtual machine images at scale. "
            .repeat(50);
        roundtrip(text.as_bytes());
        // Text must actually compress.
        let c = deflate(text.as_bytes());
        assert!(c.len() < text.len() / 3, "{} -> {}", text.len(), c.len());
    }

    #[test]
    fn roundtrip_random() {
        let mut rng = xpl_util::SplitMix64::new(7);
        for size in [1usize, 100, 4096, 70_000, 200_000] {
            let mut data = vec![0u8; size];
            rng.fill_bytes(&mut data);
            roundtrip(&data);
        }
    }

    #[test]
    fn incompressible_falls_back_to_stored() {
        let mut rng = xpl_util::SplitMix64::new(11);
        let mut data = vec![0u8; 100_000];
        rng.fill_bytes(&mut data);
        let c = deflate(&data);
        // Stored framing overhead is ~5 bytes per 64 KiB chunk.
        assert!(c.len() <= data.len() + 32, "{} -> {}", data.len(), c.len());
    }

    #[test]
    fn roundtrip_structured_binary() {
        // Repeating 16-byte records with a couple of varying fields —
        // the qcow2-cluster-like case the Gzip baseline sees.
        let mut data = Vec::new();
        for i in 0u32..5000 {
            data.extend_from_slice(&i.to_le_bytes());
            data.extend_from_slice(&[0xDE, 0xAD, 0xBE, 0xEF]);
            data.extend_from_slice(&(i % 17).to_le_bytes());
            data.extend_from_slice(&[0u8; 4]);
        }
        roundtrip(&data);
        let c = deflate(&data);
        assert!(c.len() < data.len() / 4);
    }

    #[test]
    fn inflate_rejects_garbage() {
        // Reserved block type.
        let mut w = BitWriter::new();
        w.write_bits(1, 1);
        w.write_bits(3, 2);
        let bytes = w.finish();
        assert_eq!(inflate(&bytes), Err(InflateError::BadBlockType));
    }

    #[test]
    fn inflate_rejects_truncated() {
        let c = deflate(b"hello world hello world hello world");
        for cut in 1..c.len().min(8) {
            let r = inflate(&c[..c.len() - cut]);
            assert!(r.is_err(), "truncation by {cut} must fail");
        }
    }

    #[test]
    fn inflate_known_stored_block() {
        // Hand-assembled stored block: BFINAL=1, BTYPE=00, LEN=3, "abc".
        let bytes = [0x01, 0x03, 0x00, 0xFC, 0xFF, b'a', b'b', b'c'];
        assert_eq!(inflate(&bytes).unwrap(), b"abc");
    }

    #[test]
    fn inflate_known_fixed_block() {
        // zlib-produced fixed-Huffman stream for "abcabcabcabc" (raw
        // deflate, no zlib wrapper): verified against `python zlib`.
        let bytes = [0x4b, 0x4c, 0x4a, 0x4e, 0x84, 0x21, 0x00];
        let out = inflate(&bytes);
        // Accept either success matching the plaintext, or prove our own
        // encoder agrees with the reference on the same input.
        match out {
            Ok(v) => assert_eq!(v, b"abcabcabcabc"),
            Err(e) => panic!("reference fixed-huffman stream failed: {e:?}"),
        }
    }

    #[test]
    fn length_code_boundaries() {
        assert_eq!(length_to_code(3), (257, 0, 0));
        assert_eq!(length_to_code(10), (264, 0, 0));
        assert_eq!(length_to_code(11), (265, 1, 0));
        assert_eq!(length_to_code(12), (265, 1, 1));
        assert_eq!(length_to_code(257), (284, 5, 30));
        assert_eq!(length_to_code(258), (285, 0, 0));
    }

    #[test]
    fn dist_code_boundaries() {
        assert_eq!(dist_to_code(1), (0, 0, 0));
        assert_eq!(dist_to_code(4), (3, 0, 0));
        assert_eq!(dist_to_code(5), (4, 1, 0));
        assert_eq!(dist_to_code(24577), (29, 13, 0));
        assert_eq!(dist_to_code(32768), (29, 13, 8191));
    }

    #[test]
    fn all_match_lengths_roundtrip() {
        // Exercise every representable match length at least once by
        // constructing highly repetitive inputs of varied period.
        for period in [1usize, 2, 3, 7, 13] {
            let data: Vec<u8> = (0..2000).map(|i| (i % period) as u8).collect();
            roundtrip(&data);
        }
    }
}
