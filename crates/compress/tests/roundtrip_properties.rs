//! DEFLATE/gzip round-trip property tests and the pinned regression
//! corpus (`tests/corpus/`).
//!
//! The corpus files are committed, not generated, so a compressor
//! change that breaks any historical shape (empty, all-zero, short
//! periods, incompressible noise, mixed runs, dpkg-style text) fails
//! here even if the random strategies happen to miss it.

use proptest::prelude::*;
use xpl_compress::{
    deflate, gzip_compress, gzip_compress_parallel, gzip_decompress, inflate, ratio,
    PARALLEL_SEGMENT,
};
use xpl_util::SplitMix64;

fn roundtrip(data: &[u8]) {
    let d = deflate(data);
    assert_eq!(inflate(&d).expect("inflate"), data, "deflate roundtrip");
    let g = gzip_compress(data);
    assert_eq!(gzip_decompress(&g).expect("gunzip"), data, "gzip roundtrip");
}

// ------------------------------------------------------- random properties

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn random_bytes_roundtrip(data in proptest::collection::vec(any::<u8>(), 0..24_000)) {
        roundtrip(&data);
    }

    #[test]
    fn periodic_data_roundtrips(
        seed in any::<u64>(),
        len in 0usize..24_000,
        period in 1usize..700,
    ) {
        let mut rng = SplitMix64::new(seed);
        let pattern: Vec<u8> = (0..period).map(|_| rng.next_u64() as u8).collect();
        let data: Vec<u8> = (0..len).map(|i| pattern[i % period]).collect();
        roundtrip(&data);
    }

    #[test]
    fn sparse_runs_roundtrip(
        runs in proptest::collection::vec((any::<u8>(), 1usize..2_000), 1..12),
    ) {
        // Run-length shapes: long same-byte stretches back to back.
        let mut data = Vec::new();
        for (byte, len) in runs {
            data.extend(std::iter::repeat_n(byte, len));
        }
        roundtrip(&data);
    }

    #[test]
    fn compression_never_lies_about_ratio(
        data in proptest::collection::vec(any::<u8>(), 1..8_000),
    ) {
        let c = gzip_compress(&data);
        let r = ratio(data.len(), c.len());
        prop_assert!(r > 0.0, "ratio must be positive");
        // Decompressed length always matches the original exactly.
        prop_assert_eq!(gzip_decompress(&c).unwrap().len(), data.len());
    }
}

// --------------------------------------------------------- pathological

#[test]
fn empty_input_roundtrips() {
    roundtrip(&[]);
    assert_eq!(
        gzip_decompress(&gzip_compress(&[])).unwrap(),
        Vec::<u8>::new()
    );
}

#[test]
fn all_zero_block_compresses_massively() {
    let data = vec![0u8; 64 * 1024];
    roundtrip(&data);
    let c = gzip_compress(&data);
    assert!(
        ratio(data.len(), c.len()) < 0.05,
        "zeros must compress > 20x, got {}",
        ratio(data.len(), c.len())
    );
}

#[test]
fn incompressible_noise_roundtrips_with_bounded_expansion() {
    let mut rng = SplitMix64::new(0x10C0);
    let mut data = vec![0u8; 48 * 1024];
    rng.fill_bytes(&mut data);
    roundtrip(&data);
    let c = gzip_compress(&data);
    // Stored/expanded output is allowed, but only with small framing
    // overhead — never a blowup.
    assert!(c.len() < data.len() + data.len() / 8 + 64, "{}", c.len());
}

#[test]
fn multi_member_parallel_stream_roundtrips() {
    // > 1 member: gzip_compress_parallel cuts at PARALLEL_SEGMENT.
    let mut rng = SplitMix64::new(7);
    let mut data = vec![0u8; PARALLEL_SEGMENT * 3 + 1234];
    rng.fill_bytes(&mut data);
    for chunk in data.chunks_mut(97) {
        chunk[0] = 0; // sprinkle structure so members differ in ratio
    }
    let par = gzip_compress_parallel(&data);
    assert_eq!(gzip_decompress(&par).unwrap(), data);
    // RFC 1952 concatenation semantics: manual member concatenation
    // decompresses to concatenated payloads.
    let manual = [
        gzip_compress(b"first member "),
        gzip_compress(b"second member"),
    ]
    .concat();
    assert_eq!(
        gzip_decompress(&manual).unwrap(),
        b"first member second member"
    );
}

// ------------------------------------------------------ regression corpus

#[test]
fn regression_corpus_roundtrips() {
    let corpus: [(&str, &[u8]); 6] = [
        ("empty.bin", include_bytes!("corpus/empty.bin")),
        ("zeros-8k.bin", include_bytes!("corpus/zeros-8k.bin")),
        ("dpkg-text.bin", include_bytes!("corpus/dpkg-text.bin")),
        ("random-16k.bin", include_bytes!("corpus/random-16k.bin")),
        ("period7-12k.bin", include_bytes!("corpus/period7-12k.bin")),
        ("mixed.bin", include_bytes!("corpus/mixed.bin")),
    ];
    for (name, data) in corpus {
        let d = deflate(data);
        assert_eq!(inflate(&d).unwrap(), data, "{name}: deflate roundtrip");
        let g = gzip_compress(data);
        assert_eq!(gzip_decompress(&g).unwrap(), data, "{name}: gzip roundtrip");
        let p = gzip_compress_parallel(data);
        assert_eq!(
            gzip_decompress(&p).unwrap(),
            data,
            "{name}: parallel roundtrip"
        );
    }
    // Ratio floors for the compressible members (regression against a
    // quietly degrading matcher).
    let text: &[u8] = include_bytes!("corpus/dpkg-text.bin");
    assert!(ratio(text.len(), gzip_compress(text).len()) < 0.10);
    let period: &[u8] = include_bytes!("corpus/period7-12k.bin");
    assert!(ratio(period.len(), gzip_compress(period).len()) < 0.05);
}
