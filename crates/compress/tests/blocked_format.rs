//! Blocked-container property tests: round-trips at adversarial sizes,
//! `read_range` differential-checked against full-inflate slicing, and
//! a corruption/truncation sweep over every byte of the index + footer
//! region — typed errors always, panics never.

use proptest::prelude::*;
use xpl_compress::{
    blocked_compress, blocked_compress_with, blocked_decompress, blocked_decompress_parallel,
    gzip_compress_parallel, read_range, BlockedError, BlockedReader, DEFAULT_BLOCK_SIZE,
};
use xpl_util::SplitMix64;

fn junk(seed: u64, n: usize) -> Vec<u8> {
    // Incompressible: raw SplitMix64 output.
    let mut rng = SplitMix64::new(seed);
    let mut out = Vec::with_capacity(n);
    while out.len() < n {
        out.extend_from_slice(&rng.next_u64().to_le_bytes());
    }
    out.truncate(n);
    out
}

fn texty(seed: u64, n: usize) -> Vec<u8> {
    let mut rng = SplitMix64::new(seed);
    let words = [
        b"usr/".as_slice(),
        b"share/".as_slice(),
        b"deb\n".as_slice(),
    ];
    let mut out = Vec::with_capacity(n);
    while out.len() < n {
        out.extend_from_slice(words[(rng.next_u64() % 3) as usize]);
    }
    out.truncate(n);
    out
}

fn roundtrip_all_paths(data: &[u8], block_size: usize) {
    let c = blocked_compress_with(data, block_size);
    assert_eq!(blocked_decompress(&c).expect("sequential"), data);
    assert_eq!(blocked_decompress_parallel(&c).expect("parallel"), data);
    assert_eq!(read_range(&c, 0, data.len() as u64).expect("range"), data);
}

// ------------------------------------------------------ boundary shapes

#[test]
fn boundary_sizes_roundtrip() {
    let b = DEFAULT_BLOCK_SIZE;
    for n in [0, 1, b - 1, b, b + 1, 2 * b - 1, 2 * b, 2 * b + 1] {
        roundtrip_all_paths(&texty(9, n), b);
        roundtrip_all_paths(&junk(10, n), b);
    }
}

#[test]
fn byte_identical_across_thread_counts() {
    // The acceptance pin: blocked round-trips are byte-identical at
    // 1 / 2 / 8 threads, both compressing and decompressing.
    let data = texty(123, 5 * DEFAULT_BLOCK_SIZE + 777);
    let reference = blocked_compress(&data);
    for threads in [1usize, 2, 8] {
        let (c, out) = rayon::with_num_threads(threads, || {
            let c = blocked_compress(&data);
            let out = blocked_decompress_parallel(&c).expect("inflate");
            (c, out)
        });
        assert_eq!(c, reference, "compressed bytes differ at {threads} threads");
        assert_eq!(out, data, "payload differs at {threads} threads");
    }
}

// ---------------------------------------------------- random properties

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn random_payloads_roundtrip(
        seed in any::<u64>(),
        len in 0usize..300_000,
        block_shift in 9u32..17, // block sizes 512 B .. 64 KiB
    ) {
        let block = 1usize << block_shift;
        roundtrip_all_paths(&junk(seed, len), block);
        roundtrip_all_paths(&texty(seed, len), block);
    }

    #[test]
    fn read_range_matches_full_inflate_slice(
        seed in any::<u64>(),
        len in 1usize..200_000,
        a in any::<u64>(),
        b in any::<u64>(),
    ) {
        let data = texty(seed, len);
        let c = blocked_compress_with(&data, 4096);
        // Differential oracle: read_range == inflate-everything-then-slice,
        // including out-of-bounds starts and over-long lengths.
        let start = a % (len as u64 * 2);
        let span = b % (len as u64 / 2 + 2);
        let got = read_range(&c, start, span).expect("range");
        let end = (start + span).min(len as u64) as usize;
        let expect: &[u8] = if start as usize >= len { &[] } else { &data[start as usize..end] };
        prop_assert_eq!(got, expect);
    }

    #[test]
    fn truncation_never_panics(
        cut in 0usize..2_000,
    ) {
        let data = texty(4, 40_000);
        let c = blocked_compress_with(&data, 4096);
        let cut = cut % c.len();
        // Every prefix decodes to a typed error (or, for cut=0 … never:
        // an empty prefix is Truncated too), never a panic or success.
        let err = blocked_decompress(&c[..cut]).expect_err("prefix must fail");
        prop_assert!(matches!(
            err,
            BlockedError::Truncated { .. }
                | BlockedError::BadMagic
                | BlockedError::CorruptIndex(_)
        ), "{:?}", err);
    }
}

// ----------------------------------------------- exhaustive index sweep

#[test]
fn corruption_at_every_index_byte_is_typed() {
    // Flip each byte of the trailing index+footer region in turn; every
    // flip must surface as a typed error from one of the decode paths —
    // never a panic, and never a silently wrong payload.
    let data = texty(21, 10 * 4096 + 123);
    let c = blocked_compress_with(&data, 4096);
    let index_region = 4096usize.min(c.len()); // 11 entries * 12 + 20 < 4096
    for i in (c.len() - index_region)..c.len() {
        for bit in [0x01u8, 0x80] {
            let mut bad = c.clone();
            bad[i] ^= bit;
            match blocked_decompress(&bad) {
                Ok(out) => assert_eq!(
                    out, data,
                    "flip at {i} changed the payload without an error"
                ),
                Err(
                    BlockedError::BadMagic
                    | BlockedError::Truncated { .. }
                    | BlockedError::CorruptIndex(_)
                    | BlockedError::BlockCrcMismatch { .. }
                    | BlockedError::BlockLenMismatch { .. }
                    | BlockedError::Inflate { .. }
                    | BlockedError::Lz4 { .. },
                ) => {}
            }
        }
    }
}

#[test]
fn truncation_at_every_tail_byte_is_typed() {
    let data = texty(22, 6 * 4096);
    let c = blocked_compress_with(&data, 4096);
    // Cut at every boundary in the last 256 bytes (covers the whole
    // index + footer) and at a spread of earlier offsets.
    let cuts: Vec<usize> = (c.len().saturating_sub(256)..c.len())
        .chain((0..c.len()).step_by(97))
        .collect();
    for cut in cuts {
        let err = blocked_decompress(&c[..cut]).expect_err("truncated must fail");
        assert!(
            matches!(
                err,
                BlockedError::Truncated { .. }
                    | BlockedError::BadMagic
                    | BlockedError::CorruptIndex(_)
            ),
            "cut at {cut}: {err:?}"
        );
    }
}

// ------------------------------------------------------- perf-shape pins

#[test]
fn range_read_of_8mib_blob_touches_under_an_eighth() {
    // The acceptance criterion: a 64 KiB span of an 8 MiB blob must
    // decompress fewer than 1/8 of the blocks.
    let data = texty(33, 8 * 1024 * 1024);
    let c = blocked_compress(&data);
    let mut r = BlockedReader::new(&c).expect("parse");
    let total_blocks = r.index().entries.len();
    assert_eq!(total_blocks, 128);
    let got = r.read_at(3_000_000, 64 * 1024).expect("range");
    assert_eq!(&got[..], &data[3_000_000..3_000_000 + 64 * 1024]);
    assert!(
        r.blocks_inflated() < total_blocks / 8,
        "{} of {total_blocks} blocks inflated",
        r.blocks_inflated()
    );
    assert!(r.compressed_bytes_touched() < c.len() as u64 / 8);
}

#[test]
fn blocked_ratio_comparable_to_gzip() {
    // Per-block deflate loses a little ratio at the seams plus 12 B/block
    // of index; on texty content it must stay within a few percent of the
    // multi-member gzip the stores used before.
    let data = texty(44, 2 * 1024 * 1024);
    let blocked = blocked_compress(&data);
    let gz = gzip_compress_parallel(&data);
    assert!(
        (blocked.len() as f64) < gz.len() as f64 * 1.05,
        "blocked {} vs gzip {}",
        blocked.len(),
        gz.len()
    );
}
