//! Thread-pool determinism suite for `gzip_compress_parallel`.
//!
//! The rayon shim now runs mapped stages on real worker threads; these
//! tests pin the contract that matters to every store: the compressed
//! stream is **byte-identical** on any pool size, and identical to the
//! sequential per-segment construction (one `gzip_compress` member per
//! `PARALLEL_SEGMENT` chunk, concatenated — exactly what the pre-pool
//! sequential shim produced).

use xpl_compress::{gzip_compress, gzip_compress_parallel, gzip_decompress, PARALLEL_SEGMENT};
use xpl_util::SplitMix64;

/// The committed regression corpus, repeated until it spans several
/// parallel segments.
fn corpus_payload() -> Vec<u8> {
    let parts: [&[u8]; 6] = [
        include_bytes!("corpus/empty.bin"),
        include_bytes!("corpus/zeros-8k.bin"),
        include_bytes!("corpus/dpkg-text.bin"),
        include_bytes!("corpus/random-16k.bin"),
        include_bytes!("corpus/period7-12k.bin"),
        include_bytes!("corpus/mixed.bin"),
    ];
    let one = parts.concat();
    let mut data = Vec::new();
    while data.len() < PARALLEL_SEGMENT * 3 + 4321 {
        data.extend_from_slice(&one);
    }
    data
}

/// The sequential reference: what the pre-pool shim emitted.
fn sequential_members(data: &[u8]) -> Vec<u8> {
    data.chunks(PARALLEL_SEGMENT)
        .flat_map(gzip_compress)
        .collect()
}

#[test]
fn output_is_byte_identical_across_pool_sizes() {
    let data = corpus_payload();
    let reference = sequential_members(&data);
    for threads in [1usize, 2, 4, 16] {
        let got = rayon::with_num_threads(threads, || gzip_compress_parallel(&data));
        assert_eq!(
            got, reference,
            "gzip_compress_parallel diverged from the sequential stream at {threads} threads"
        );
    }
    assert_eq!(gzip_decompress(&reference).unwrap(), data);
}

#[test]
fn random_payload_stable_across_pool_sizes() {
    let mut rng = SplitMix64::new(0x900F);
    let mut data = vec![0u8; PARALLEL_SEGMENT * 5 + 99];
    rng.fill_bytes(&mut data);
    for chunk in data.chunks_mut(211) {
        chunk[0] = 0x55; // sprinkle structure so segments compress unevenly
    }
    let reference = sequential_members(&data);
    for threads in [1usize, 3, 8] {
        let got = rayon::with_num_threads(threads, || gzip_compress_parallel(&data));
        assert_eq!(got, reference, "{threads} threads");
    }
}

#[test]
fn panic_in_worker_propagates_through_parallel_map() {
    use rayon::prelude::*;
    let data = vec![1u32; 64];
    let result = std::panic::catch_unwind(|| {
        rayon::with_num_threads(4, || {
            let _: Vec<u32> = data
                .par_chunks(4)
                .map(|c| {
                    if c[0] == 1 {
                        panic!("segment worker failure");
                    }
                    c[0]
                })
                .collect();
        })
    });
    assert!(
        result.is_err(),
        "a worker panic must surface to the caller, not deadlock"
    );
}
