//! Property tests for the LZ4-class fast codec — raw block streams and
//! the blocked-LZ4 (`XBL1`) container.
//!
//! The shapes the satellite pins: empty, one byte, the container block
//! boundary ±1, incompressible junk, plus every-byte truncation and
//! corruption sweeps that must surface as typed errors, never panics.

use proptest::prelude::*;
use xpl_compress::{
    blocked_compress_lz4, blocked_decompress, blocked_decompress_parallel, codec_for,
    decompress_auto, lz4_compress, lz4_decompress, read_range, BlockedError, CodecError,
    DEFAULT_BLOCK_SIZE,
};
use xpl_util::SplitMix64;

fn roundtrip(data: &[u8]) {
    let raw = lz4_compress(data);
    assert_eq!(
        lz4_decompress(&raw, data.len() as u64).expect("raw decode"),
        data,
        "raw lz4 roundtrip"
    );
    let container = blocked_compress_lz4(data);
    assert_eq!(
        blocked_decompress(&container).expect("container decode"),
        data,
        "container roundtrip"
    );
    assert_eq!(
        blocked_decompress_parallel(&container).expect("parallel decode"),
        data,
        "parallel container roundtrip"
    );
    assert_eq!(
        decompress_auto(&container).expect("auto decode"),
        data,
        "decompress_auto must sniff XBL1"
    );
}

// ------------------------------------------------------- random properties

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn random_bytes_roundtrip(data in proptest::collection::vec(any::<u8>(), 0..24_000)) {
        roundtrip(&data);
    }

    #[test]
    fn structured_bytes_roundtrip(
        seed in any::<u64>(),
        len in 0usize..40_000,
        period in 1usize..500,
    ) {
        let mut rng = SplitMix64::new(seed);
        let pattern: Vec<u8> = (0..period).map(|_| rng.next_u64() as u8).collect();
        let data: Vec<u8> = (0..len).map(|i| pattern[i % period]).collect();
        roundtrip(&data);
    }

    #[test]
    fn range_reads_match_slices(
        seed in any::<u64>(),
        start in any::<u64>(),
        span in 0u64..50_000,
    ) {
        let mut rng = SplitMix64::new(seed);
        let mut data = vec![0u8; 150_000];
        rng.fill_bytes(&mut data);
        for chunk in data.chunks_mut(61) {
            chunk[0] = b'/'; // sprinkle matches so blocks compress
        }
        let c = blocked_compress_lz4(&data);
        let start = start % (data.len() as u64 * 2);
        let got = read_range(&c, start, span).expect("range");
        let end = (start + span).min(data.len() as u64) as usize;
        let expect: &[u8] = if start as usize >= data.len() {
            &[]
        } else {
            &data[start as usize..end]
        };
        prop_assert_eq!(got, expect);
    }

    #[test]
    fn container_truncation_is_typed(cut_seed in any::<u64>()) {
        let data: Vec<u8> = (0..20_000u32).flat_map(|i| (i / 16).to_le_bytes()).collect();
        let c = blocked_compress_lz4(&data);
        let cut = (cut_seed % c.len() as u64) as usize;
        let err = blocked_decompress(&c[..cut]).expect_err("prefix must fail");
        prop_assert!(matches!(
            err,
            BlockedError::Truncated { .. }
                | BlockedError::BadMagic
                | BlockedError::CorruptIndex(_)
        ), "cut={}: {:?}", cut, err);
    }
}

// --------------------------------------------------------- pinned shapes

#[test]
fn pinned_boundary_shapes_roundtrip() {
    let make = |n: usize| -> Vec<u8> {
        let mut rng = SplitMix64::new(n as u64 + 7);
        let mut data = Vec::with_capacity(n);
        while data.len() < n {
            match rng.next_u64() % 3 {
                0 => data.extend_from_slice(b"/etc/alternatives/"),
                1 => data.extend_from_slice(&rng.next_u64().to_le_bytes()),
                _ => data.extend_from_slice(&[0u8; 11]),
            }
        }
        data.truncate(n);
        data
    };
    for n in [
        0,
        1,
        2,
        DEFAULT_BLOCK_SIZE - 1,
        DEFAULT_BLOCK_SIZE,
        DEFAULT_BLOCK_SIZE + 1,
        2 * DEFAULT_BLOCK_SIZE - 1,
        2 * DEFAULT_BLOCK_SIZE + 1,
    ] {
        roundtrip(&make(n));
    }
}

#[test]
fn incompressible_junk_roundtrips_with_bounded_expansion() {
    let mut rng = SplitMix64::new(0x7A4);
    let mut data = vec![0u8; 96 * 1024];
    rng.fill_bytes(&mut data);
    roundtrip(&data);
    let raw = lz4_compress(&data);
    // Pure literals: tiny token/extension overhead, never a blowup.
    assert!(
        raw.len() < data.len() + data.len() / 128 + 64,
        "{}",
        raw.len()
    );
}

#[test]
fn corruption_at_every_byte_is_typed_or_caught() {
    // Flip one bit at every byte of a small container: either a typed
    // error, or (for flips the per-block CRC proves harmless — there
    // are none, but the contract is the assert) the exact payload.
    let data: Vec<u8> = (0..3000u32).flat_map(|i| (i / 8).to_le_bytes()).collect();
    let c = blocked_compress_lz4(&data);
    for i in 0..c.len() {
        let mut bad = c.clone();
        bad[i] ^= 0x10;
        match blocked_decompress(&bad) {
            Ok(out) => assert_eq!(out, data, "flip at byte {i} silently changed the payload"),
            Err(
                BlockedError::BadMagic
                | BlockedError::Truncated { .. }
                | BlockedError::CorruptIndex(_)
                | BlockedError::BlockCrcMismatch { .. }
                | BlockedError::BlockLenMismatch { .. }
                | BlockedError::Inflate { .. }
                | BlockedError::Lz4 { .. },
            ) => {}
        }
    }
}

#[test]
fn raw_stream_truncation_at_every_byte_never_panics() {
    let data: Vec<u8> = (0..8_000u32).flat_map(|i| (i / 32).to_le_bytes()).collect();
    let raw = lz4_compress(&data);
    for cut in 0..raw.len() {
        // A raw stream has no trailer: a boundary cut may decode to a
        // correct prefix (the container's length+CRC checks reject
        // those); anything else must be a typed error.
        if let Ok(got) = lz4_decompress(&raw[..cut], data.len() as u64) {
            assert!(data.starts_with(&got), "cut={cut} produced a non-prefix");
        }
    }
}

#[test]
fn magic_prefixes_never_misdetect() {
    // "XBL1" truncated to every length, through the public dispatch.
    for take in 0..4 {
        let prefix = &b"XBL1"[..take];
        assert_eq!(codec_for(prefix).err(), Some(CodecError::UnknownFormat));
    }
    assert_eq!(codec_for(b"XBL1").unwrap().name(), "blocked-lz4");
}
