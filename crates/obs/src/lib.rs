//! `xpl-obs` — the deterministic observability core.
//!
//! One [`Registry`] of named metrics feeds every layer of the stack:
//! CAS shards, the durable backend, the registry front end, the wire
//! layer, and the codec tiers. Three design rules keep observability
//! from weakening the differential oracles the repo is built on:
//!
//! 1. **Integers only.** Counters, gauges, and histograms hold `u64`s;
//!    histograms bucket by `log2`, so a snapshot never contains a
//!    float and renders byte-identically on every host.
//! 2. **A deterministic / wall split.** Every metric is registered
//!    under a [`Section`]: `Det` metrics are derived purely from
//!    operation counts and must be byte-identical at any thread count
//!    (the 1-vs-4-thread CI diff pins them); `Wall` metrics (timings,
//!    gauges, anything transport-scheduling dependent) are excluded
//!    from the deterministic fingerprint.
//! 3. **Pay only when attached.** Instrumented structs hold a
//!    `OnceLock` handle; an unattached hot path costs one load and a
//!    branch, and a run without a registry is byte-identical to a run
//!    with one — observability is zero-interference by construction.
//!
//! Snapshots render three ways: canonical sorted JSON (with an
//! embedded SHA-256 `det_fingerprint` over the deterministic section),
//! a Prometheus-style text exposition, and — for traces — an
//! aggregated span tree ([`render_tree`]) keyed by name with per-phase
//! totals, which is what `repro profile` prints.
//!
//! The [`Clock`] seam decouples span timing from the host:
//! [`WallClock`] for real runs, [`ManualClock`] for the virtual-time
//! DES and tests.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use xpl_util::Sha256;

// ------------------------------------------------------------- sections

/// Which fingerprint a metric belongs to.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Section {
    /// Operation-count-derived: byte-identical at any thread count.
    Det,
    /// Timings, gauges, transport-dependent counts: excluded from the
    /// deterministic fingerprint.
    Wall,
}

impl Section {
    pub fn name(self) -> &'static str {
        match self {
            Section::Det => "det",
            Section::Wall => "wall",
        }
    }
}

// -------------------------------------------------------------- metrics

/// A monotonically increasing counter. All ordering is `Relaxed`: obs
/// counts are sums of commutative increments, never synchronization.
#[derive(Debug, Default)]
pub struct Counter {
    v: AtomicU64,
}

impl Counter {
    pub fn inc(&self) {
        self.v.fetch_add(1, Ordering::Relaxed);
    }

    pub fn add(&self, n: u64) {
        self.v.fetch_add(n, Ordering::Relaxed);
    }

    pub fn get(&self) -> u64 {
        self.v.load(Ordering::Relaxed)
    }
}

/// A settable level (queue depths, open connections). Gauges are
/// inherently racy snapshots of a moving level, so they live in the
/// `Wall` section by convention.
#[derive(Debug, Default)]
pub struct Gauge {
    v: AtomicU64,
}

impl Gauge {
    pub fn set(&self, n: u64) {
        self.v.store(n, Ordering::Relaxed);
    }

    /// Raise to `n` if it exceeds the current value (high-water mark).
    pub fn set_max(&self, n: u64) {
        self.v.fetch_max(n, Ordering::Relaxed);
    }

    pub fn add(&self, n: u64) {
        self.v.fetch_add(n, Ordering::Relaxed);
    }

    pub fn sub(&self, n: u64) {
        self.v.fetch_sub(n, Ordering::Relaxed);
    }

    pub fn get(&self) -> u64 {
        self.v.load(Ordering::Relaxed)
    }
}

/// Number of log2 buckets: bucket 0 holds the value 0, bucket `k`
/// (1 ≤ k ≤ 64) holds values in `[2^(k-1), 2^k - 1]`; `u64::MAX`
/// lands in bucket 64.
pub const HIST_BUCKETS: usize = 65;

/// Bucket index of a value. No floats, no branches beyond the zero
/// case: `65 - leading_zeros` shifted down by one.
pub fn bucket_index(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        64 - v.leading_zeros() as usize
    }
}

/// Inclusive upper bound of a bucket (the Prometheus `le` label).
pub fn bucket_upper_bound(idx: usize) -> u64 {
    if idx >= 64 {
        u64::MAX
    } else {
        (1u64 << idx) - 1
    }
}

/// A log2-bucketed integer histogram. Per-bucket counts plus a
/// saturating sum; snapshots are exact integers and merge by
/// element-wise addition (associative and commutative — pinned by a
/// property test).
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HIST_BUCKETS],
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [(); HIST_BUCKETS].map(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        // Saturating: a histogram over u64 samples can overflow the sum
        // long before any bucket count wraps; pin at MAX instead of
        // wrapping into a nonsense total.
        let mut cur = self.sum.load(Ordering::Relaxed);
        loop {
            let next = cur.saturating_add(v);
            match self
                .sum
                .compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => break,
                Err(now) => cur = now,
            }
        }
    }

    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = [0u64; HIST_BUCKETS];
        for (out, b) in buckets.iter_mut().zip(&self.buckets) {
            *out = b.load(Ordering::Relaxed);
        }
        HistogramSnapshot {
            buckets,
            sum: self.sum.load(Ordering::Relaxed),
        }
    }
}

/// A plain-number copy of a [`Histogram`], mergeable and comparable.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    pub buckets: [u64; HIST_BUCKETS],
    pub sum: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot {
            buckets: [0; HIST_BUCKETS],
            sum: 0,
        }
    }
}

impl HistogramSnapshot {
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Element-wise merge (bucket counts add, sums saturate).
    pub fn merge(&self, other: &HistogramSnapshot) -> HistogramSnapshot {
        let mut out = *self;
        for (o, b) in out.buckets.iter_mut().zip(&other.buckets) {
            *o = o.wrapping_add(*b);
        }
        out.sum = out.sum.saturating_add(other.sum);
        out
    }
}

// ------------------------------------------------------------- registry

/// Metric names are a restricted charset so the canonical JSON needs
/// no escaping: lowercase alphanumerics, dots, underscores, dashes.
fn check_name(name: &str) {
    assert!(
        !name.is_empty()
            && name
                .bytes()
                .all(|b| b.is_ascii_lowercase() || b.is_ascii_digit() || b"._-".contains(&b)),
        "invalid metric name {name:?}: use [a-z0-9._-]"
    );
}

#[derive(Default)]
struct RegistryInner {
    counters: BTreeMap<String, (Section, Arc<Counter>)>,
    gauges: BTreeMap<String, (Section, Arc<Gauge>)>,
    histograms: BTreeMap<String, (Section, Arc<Histogram>)>,
}

/// The named-metric registry. Registration (get-or-create) takes a
/// lock; the returned `Arc` handles are lock-free on the hot path.
/// Snapshots render canonically — names sorted, integers only — so
/// two registries fed the same operation stream render byte-identical
/// deterministic sections regardless of registration order or thread
/// count.
#[derive(Default)]
pub struct Registry {
    inner: Mutex<RegistryInner>,
}

impl Registry {
    pub fn new() -> Arc<Registry> {
        Arc::new(Registry::default())
    }

    pub fn counter(&self, name: &str, section: Section) -> Arc<Counter> {
        check_name(name);
        let mut inner = self.inner.lock().unwrap();
        let (s, c) = inner
            .counters
            .entry(name.to_string())
            .or_insert_with(|| (section, Arc::new(Counter::default())))
            .clone();
        assert_eq!(s, section, "metric {name} re-registered in another section");
        c
    }

    pub fn gauge(&self, name: &str, section: Section) -> Arc<Gauge> {
        check_name(name);
        let mut inner = self.inner.lock().unwrap();
        let (s, g) = inner
            .gauges
            .entry(name.to_string())
            .or_insert_with(|| (section, Arc::new(Gauge::default())))
            .clone();
        assert_eq!(s, section, "metric {name} re-registered in another section");
        g
    }

    pub fn histogram(&self, name: &str, section: Section) -> Arc<Histogram> {
        check_name(name);
        let mut inner = self.inner.lock().unwrap();
        let (s, h) = inner
            .histograms
            .entry(name.to_string())
            .or_insert_with(|| (section, Arc::new(Histogram::default())))
            .clone();
        assert_eq!(s, section, "metric {name} re-registered in another section");
        h
    }

    /// A point-in-time plain-number copy of every metric, sorted.
    pub fn snapshot(&self) -> Snapshot {
        let inner = self.inner.lock().unwrap();
        Snapshot {
            counters: inner
                .counters
                .iter()
                .map(|(n, (s, c))| (n.clone(), *s, c.get()))
                .collect(),
            gauges: inner
                .gauges
                .iter()
                .map(|(n, (s, g))| (n.clone(), *s, g.get()))
                .collect(),
            histograms: inner
                .histograms
                .iter()
                .map(|(n, (s, h))| (n.clone(), *s, h.snapshot()))
                .collect(),
        }
    }
}

// ------------------------------------------------------------- snapshot

/// A rendered-ready copy of a [`Registry`]: names sorted (BTreeMap
/// iteration order), values plain integers.
#[derive(Clone, Debug, Default)]
pub struct Snapshot {
    /// `(name, section, value)`, name-sorted.
    pub counters: Vec<(String, Section, u64)>,
    pub gauges: Vec<(String, Section, u64)>,
    pub histograms: Vec<(String, Section, HistogramSnapshot)>,
}

fn render_hist_json(out: &mut String, h: &HistogramSnapshot) {
    out.push_str("{\"buckets\":{");
    let mut first = true;
    for (i, &c) in h.buckets.iter().enumerate() {
        if c == 0 {
            continue;
        }
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&format!("\"{i}\":{c}"));
    }
    out.push_str(&format!("}},\"count\":{},\"sum\":{}}}", h.count(), h.sum));
}

impl Snapshot {
    /// Render one section as a canonical JSON object:
    /// `{"counters":{...},"gauges":{...},"histograms":{...}}` with
    /// name-sorted keys and integer values only. Byte-stable by
    /// construction — the fingerprints hash exactly this rendering.
    pub fn render_section_json(&self, section: Section) -> String {
        let mut out = String::with_capacity(1024);
        out.push_str("{\"counters\":{");
        let mut first = true;
        for (name, s, v) in &self.counters {
            if *s != section {
                continue;
            }
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!("\"{name}\":{v}"));
        }
        out.push_str("},\"gauges\":{");
        let mut first = true;
        for (name, s, v) in &self.gauges {
            if *s != section {
                continue;
            }
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!("\"{name}\":{v}"));
        }
        out.push_str("},\"histograms\":{");
        let mut first = true;
        for (name, s, h) in &self.histograms {
            if *s != section {
                continue;
            }
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!("\"{name}\":"));
            render_hist_json(&mut out, h);
        }
        out.push_str("}}");
        out
    }

    /// SHA-256 (hex) of the deterministic section's canonical JSON —
    /// the value CI diffs across thread counts.
    pub fn det_fingerprint(&self) -> String {
        Sha256::digest(self.render_section_json(Section::Det).as_bytes()).to_hex()
    }

    /// SHA-256 (hex) over both sections' canonical JSON.
    pub fn fingerprint(&self) -> String {
        let both = format!(
            "{}\n{}",
            self.render_section_json(Section::Det),
            self.render_section_json(Section::Wall)
        );
        Sha256::digest(both.as_bytes()).to_hex()
    }

    /// The full snapshot document: both sections plus their embedded
    /// fingerprints, canonical and self-describing — what `--metrics`
    /// writes and what the `Stats` wire request returns.
    pub fn render_json(&self) -> String {
        format!(
            "{{\"det_fingerprint\":\"{}\",\"fingerprint\":\"{}\",\"sections\":{{\"det\":{},\"wall\":{}}}}}",
            self.det_fingerprint(),
            self.fingerprint(),
            self.render_section_json(Section::Det),
            self.render_section_json(Section::Wall)
        )
    }

    /// Prometheus-style text exposition: dots become underscores, an
    /// `xpl_` prefix, a `section` label, histograms as cumulative `le`
    /// buckets.
    pub fn render_text(&self) -> String {
        let mut out = String::with_capacity(2048);
        for (name, s, v) in &self.counters {
            let flat = name.replace(['.', '-'], "_");
            out.push_str(&format!("# TYPE xpl_{flat} counter\n"));
            out.push_str(&format!("xpl_{flat}{{section=\"{}\"}} {v}\n", s.name()));
        }
        for (name, s, v) in &self.gauges {
            let flat = name.replace(['.', '-'], "_");
            out.push_str(&format!("# TYPE xpl_{flat} gauge\n"));
            out.push_str(&format!("xpl_{flat}{{section=\"{}\"}} {v}\n", s.name()));
        }
        for (name, s, h) in &self.histograms {
            let flat = name.replace(['.', '-'], "_");
            out.push_str(&format!("# TYPE xpl_{flat} histogram\n"));
            let mut cum = 0u64;
            for (i, &c) in h.buckets.iter().enumerate() {
                if c == 0 {
                    continue;
                }
                cum += c;
                out.push_str(&format!(
                    "xpl_{flat}_bucket{{section=\"{}\",le=\"{}\"}} {cum}\n",
                    s.name(),
                    bucket_upper_bound(i)
                ));
            }
            out.push_str(&format!(
                "xpl_{flat}_bucket{{section=\"{}\",le=\"+Inf\"}} {cum}\n",
                s.name()
            ));
            out.push_str(&format!(
                "xpl_{flat}_sum{{section=\"{}\"}} {}\n",
                s.name(),
                h.sum
            ));
            out.push_str(&format!(
                "xpl_{flat}_count{{section=\"{}\"}} {}\n",
                s.name(),
                h.count()
            ));
        }
        out
    }
}

/// Extract the embedded `det_fingerprint` from a rendered snapshot
/// document (what a wire client holds) without a JSON parser.
pub fn parse_det_fingerprint(json: &str) -> Option<&str> {
    let key = "\"det_fingerprint\":\"";
    let start = json.find(key)? + key.len();
    let end = json[start..].find('"')? + start;
    Some(&json[start..end])
}

// ---------------------------------------------------------------- clock

/// The time seam: spans ask a clock, never `Instant::now` directly, so
/// the same trace machinery serves wall runs and the virtual-time DES.
pub trait Clock: Send + Sync {
    fn now_ns(&self) -> u64;
}

/// Monotonic wall time, as nanoseconds since clock construction.
pub struct WallClock {
    origin: std::time::Instant,
}

impl WallClock {
    #[allow(clippy::new_without_default)]
    pub fn new() -> WallClock {
        WallClock {
            origin: std::time::Instant::now(),
        }
    }
}

impl Clock for WallClock {
    fn now_ns(&self) -> u64 {
        self.origin.elapsed().as_nanos() as u64
    }
}

/// A hand-advanced clock for deterministic traces (DES, tests).
#[derive(Default)]
pub struct ManualClock {
    now: AtomicU64,
}

impl ManualClock {
    pub fn new() -> ManualClock {
        ManualClock::default()
    }

    pub fn set(&self, ns: u64) {
        self.now.store(ns, Ordering::Relaxed);
    }

    pub fn advance(&self, ns: u64) {
        self.now.fetch_add(ns, Ordering::Relaxed);
    }
}

impl Clock for ManualClock {
    fn now_ns(&self) -> u64 {
        self.now.load(Ordering::Relaxed)
    }
}

// ---------------------------------------------------------------- trace

/// One finished span.
#[derive(Clone, Debug)]
pub struct SpanRecord {
    pub id: u64,
    pub parent: Option<u64>,
    pub name: String,
    pub start_ns: u64,
    pub end_ns: u64,
}

impl SpanRecord {
    pub fn duration_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.start_ns)
    }
}

struct OpenSpan {
    parent: Option<u64>,
    name: String,
    start_ns: u64,
}

struct RingInner {
    next_id: u64,
    open: BTreeMap<u64, OpenSpan>,
    done: std::collections::VecDeque<SpanRecord>,
}

/// A bounded ring of completed spans with parent/child edges. `begin`
/// hands out span ids; `end` moves the span into the ring, evicting
/// the oldest completed span past capacity. The RAII [`SpanGuard`]
/// (via [`TraceRing::span`]) is the usual way in.
pub struct TraceRing {
    cap: usize,
    clock: Arc<dyn Clock>,
    inner: Mutex<RingInner>,
}

impl TraceRing {
    pub fn new(cap: usize, clock: Arc<dyn Clock>) -> Arc<TraceRing> {
        Arc::new(TraceRing {
            cap: cap.max(1),
            clock,
            inner: Mutex::new(RingInner {
                next_id: 1,
                open: BTreeMap::new(),
                done: std::collections::VecDeque::new(),
            }),
        })
    }

    pub fn begin(&self, name: &str, parent: Option<u64>) -> u64 {
        let now = self.clock.now_ns();
        let mut inner = self.inner.lock().unwrap();
        let id = inner.next_id;
        inner.next_id += 1;
        inner.open.insert(
            id,
            OpenSpan {
                parent,
                name: name.to_string(),
                start_ns: now,
            },
        );
        id
    }

    pub fn end(&self, id: u64) {
        let now = self.clock.now_ns();
        let mut inner = self.inner.lock().unwrap();
        let Some(open) = inner.open.remove(&id) else {
            return; // double-end: ignore, never panic in telemetry
        };
        inner.done.push_back(SpanRecord {
            id,
            parent: open.parent,
            name: open.name,
            start_ns: open.start_ns,
            end_ns: now,
        });
        if inner.done.len() > self.cap {
            inner.done.pop_front();
        }
    }

    /// RAII span: ends on drop.
    pub fn span(self: &Arc<Self>, name: &str, parent: Option<u64>) -> SpanGuard {
        SpanGuard {
            ring: Arc::clone(self),
            id: self.begin(name, parent),
        }
    }

    /// Completed spans, oldest first.
    pub fn completed(&self) -> Vec<SpanRecord> {
        self.inner.lock().unwrap().done.iter().cloned().collect()
    }
}

/// Ends its span on drop; `id()` is the parent handle for children.
pub struct SpanGuard {
    ring: Arc<TraceRing>,
    id: u64,
}

impl SpanGuard {
    pub fn id(&self) -> u64 {
        self.id
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        self.ring.end(self.id);
    }
}

// ----------------------------------------------------- span aggregation

/// One node of the aggregated span tree: spans grouped by name under
/// their parents' group, with total time and invocation count.
#[derive(Clone, Debug)]
pub struct AggSpan {
    pub name: String,
    pub count: u64,
    pub total_ns: u64,
    pub children: Vec<AggSpan>,
}

fn aggregate_level(
    spans: &[SpanRecord],
    by_parent: &BTreeMap<Option<u64>, Vec<usize>>,
    parents: &[usize],
) -> Vec<AggSpan> {
    // Group this level's children (children of ANY span in `parents`,
    // or the roots when `parents` is empty) by name, in
    // first-appearance order.
    let child_idxs: Vec<usize> = if parents.is_empty() {
        by_parent.get(&None).cloned().unwrap_or_default()
    } else {
        let mut v: Vec<usize> = Vec::new();
        for &p in parents {
            if let Some(kids) = by_parent.get(&Some(spans[p].id)) {
                v.extend_from_slice(kids);
            }
        }
        v.sort_unstable();
        v
    };
    let mut order: Vec<&str> = Vec::new();
    let mut groups: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    for &i in &child_idxs {
        let name = spans[i].name.as_str();
        groups
            .entry(name)
            .or_insert_with(|| {
                order.push(name);
                Vec::new()
            })
            .push(i);
    }
    order
        .iter()
        .map(|name| {
            let idxs = &groups[name];
            AggSpan {
                name: name.to_string(),
                count: idxs.len() as u64,
                total_ns: idxs.iter().map(|&i| spans[i].duration_ns()).sum(),
                children: aggregate_level(spans, by_parent, idxs),
            }
        })
        .collect()
}

/// Aggregate completed spans into a name-grouped tree (first-appearance
/// order at every level).
pub fn aggregate_spans(spans: &[SpanRecord]) -> Vec<AggSpan> {
    let mut by_parent: BTreeMap<Option<u64>, Vec<usize>> = BTreeMap::new();
    let ids: std::collections::BTreeSet<u64> = spans.iter().map(|s| s.id).collect();
    for (i, s) in spans.iter().enumerate() {
        // A parent that was evicted from the ring (or never ended)
        // promotes its children to roots rather than dropping them.
        let key = match s.parent {
            Some(p) if ids.contains(&p) => Some(p),
            _ => None,
        };
        by_parent.entry(key).or_default().push(i);
    }
    aggregate_level(spans, &by_parent, &[])
}

fn render_agg(out: &mut String, nodes: &[AggSpan], depth: usize) {
    for n in nodes {
        let label = format!("{:indent$}{}", "", n.name, indent = depth * 2);
        out.push_str(&format!(
            "{label:<28} total {:>10.3} ms  count {:>6}\n",
            n.total_ns as f64 / 1e6,
            n.count
        ));
        render_agg(out, &n.children, depth + 1);
    }
}

/// Render the aggregated span tree as indented text with per-phase
/// totals — the `repro profile` output.
pub fn render_tree(spans: &[SpanRecord]) -> String {
    let mut out = String::new();
    render_agg(&mut out, &aggregate_spans(spans), 0);
    out
}

// ------------------------------------------------- attachment pattern

/// The shim instrumented structs embed: a `OnceLock` around an
/// arbitrary handle bundle. Unattached, the hot path pays one atomic
/// load and a branch.
pub type ObsSlot<T> = OnceLock<Arc<T>>;

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        for k in 1..64usize {
            let lo = 1u64 << (k - 1);
            let hi = (1u64 << k) - 1;
            assert_eq!(bucket_index(lo), k, "2^{}", k - 1);
            assert_eq!(bucket_index(hi), k, "2^{k}-1");
            if k < 63 {
                assert_eq!(bucket_index(hi + 1), k + 1, "2^{k}");
            }
        }
        assert_eq!(bucket_index(u64::MAX), 64);
        assert_eq!(bucket_upper_bound(0), 0);
        assert_eq!(bucket_upper_bound(1), 1);
        assert_eq!(bucket_upper_bound(64), u64::MAX);
    }

    #[test]
    fn registry_renders_sorted_and_stable() {
        let reg = Registry::new();
        // Register out of order; rendering must sort.
        reg.counter("z.last", Section::Det).add(3);
        reg.counter("a.first", Section::Det).inc();
        reg.gauge("m.depth", Section::Wall).set(7);
        reg.histogram("h.bytes", Section::Det).record(300);
        let s1 = reg.snapshot();
        let json = s1.render_section_json(Section::Det);
        assert!(json.find("a.first").unwrap() < json.find("z.last").unwrap());
        assert!(!json.contains("m.depth"), "wall gauge leaked into det");
        // Same ops on a fresh registry, different registration order:
        // identical det rendering and fingerprint.
        let reg2 = Registry::new();
        reg2.histogram("h.bytes", Section::Det).record(300);
        reg2.counter("a.first", Section::Det).inc();
        reg2.gauge("m.depth", Section::Wall).set(7);
        reg2.counter("z.last", Section::Det).add(3);
        let s2 = reg2.snapshot();
        assert_eq!(s1.det_fingerprint(), s2.det_fingerprint());
        assert_eq!(s1.render_json(), s2.render_json());
        // The embedded fingerprint is extractable without a parser.
        assert_eq!(
            parse_det_fingerprint(&s1.render_json()),
            Some(s1.det_fingerprint().as_str())
        );
    }

    #[test]
    fn wall_metrics_do_not_move_the_det_fingerprint() {
        let reg = Registry::new();
        reg.counter("ops", Section::Det).add(10);
        let before = reg.snapshot().det_fingerprint();
        reg.counter("net.frames", Section::Wall).add(999);
        reg.gauge("depth", Section::Wall).set(5);
        let after = reg.snapshot();
        assert_eq!(before, after.det_fingerprint());
        assert_ne!(
            after.render_section_json(Section::Wall),
            after.render_section_json(Section::Det)
        );
    }

    #[test]
    fn text_exposition_is_cumulative() {
        let reg = Registry::new();
        let h = reg.histogram("lat", Section::Wall);
        h.record(0);
        h.record(1);
        h.record(2);
        h.record(3);
        let text = reg.snapshot().render_text();
        assert!(text.contains("xpl_lat_bucket{section=\"wall\",le=\"0\"} 1"));
        assert!(text.contains("xpl_lat_bucket{section=\"wall\",le=\"1\"} 2"));
        assert!(text.contains("xpl_lat_bucket{section=\"wall\",le=\"3\"} 4"));
        assert!(text.contains("xpl_lat_bucket{section=\"wall\",le=\"+Inf\"} 4"));
        assert!(text.contains("xpl_lat_count{section=\"wall\"} 4"));
        assert!(text.contains("xpl_lat_sum{section=\"wall\"} 6"));
    }

    #[test]
    #[should_panic(expected = "invalid metric name")]
    fn bad_names_are_rejected() {
        Registry::new().counter("Bad Name!", Section::Det);
    }

    #[test]
    fn spans_nest_and_aggregate() {
        let clock = Arc::new(ManualClock::new());
        let ring = TraceRing::new(1024, clock.clone() as Arc<dyn Clock>);
        for _ in 0..3 {
            let publish = ring.span("publish", None);
            {
                let _chunk = ring.span("chunk", Some(publish.id()));
                clock.advance(10);
            }
            {
                let _compress = ring.span("compress", Some(publish.id()));
                clock.advance(30);
            }
            clock.advance(5); // untraced tail inside publish
        }
        let spans = ring.completed();
        assert_eq!(spans.len(), 9);
        let agg = aggregate_spans(&spans);
        assert_eq!(agg.len(), 1);
        assert_eq!(agg[0].name, "publish");
        assert_eq!(agg[0].count, 3);
        assert_eq!(agg[0].total_ns, 3 * 45);
        assert_eq!(agg[0].children.len(), 2);
        assert_eq!(agg[0].children[0].name, "chunk");
        assert_eq!(agg[0].children[0].total_ns, 30);
        assert_eq!(agg[0].children[1].name, "compress");
        assert_eq!(agg[0].children[1].total_ns, 90);
        // Children never exceed their parent.
        let kids: u64 = agg[0].children.iter().map(|c| c.total_ns).sum();
        assert!(kids <= agg[0].total_ns);
        let text = render_tree(&spans);
        assert!(text.contains("publish"));
        assert!(text.contains("  chunk"));
    }

    #[test]
    fn ring_evicts_oldest_and_promotes_orphans() {
        let clock = Arc::new(ManualClock::new());
        let ring = TraceRing::new(2, clock.clone() as Arc<dyn Clock>);
        let root = ring.begin("root", None);
        let a = ring.begin("a", Some(root));
        let b = ring.begin("b", Some(root));
        clock.advance(1);
        ring.end(a);
        ring.end(b);
        ring.end(root); // evicts "a" (cap 2)
        let spans = ring.completed();
        assert_eq!(spans.len(), 2);
        let agg = aggregate_spans(&spans);
        // "b" lost its parent? No — root survived; "a" was evicted.
        assert!(agg.iter().any(|n| n.name == "root"));
        ring.end(9999); // unknown id: ignored
    }

    proptest! {
        #[test]
        fn histogram_bucket_is_log2_tight(v in any::<u64>()) {
            let idx = bucket_index(v);
            prop_assert!(v <= bucket_upper_bound(idx));
            if idx > 0 {
                prop_assert!(v > bucket_upper_bound(idx - 1));
            }
        }

        #[test]
        fn histogram_merge_is_associative_and_commutative(
            a in proptest::collection::vec(any::<u64>(), 0..20),
            b in proptest::collection::vec(any::<u64>(), 0..20),
            c in proptest::collection::vec(any::<u64>(), 0..20),
        ) {
            let snap = |vals: &[u64]| {
                let h = Histogram::default();
                for &v in vals {
                    h.record(v);
                }
                h.snapshot()
            };
            let (ha, hb, hc) = (snap(&a), snap(&b), snap(&c));
            prop_assert_eq!(ha.merge(&hb), hb.merge(&ha));
            prop_assert_eq!(
                ha.merge(&hb).merge(&hc),
                ha.merge(&hb.merge(&hc))
            );
            // Merging equals recording the concatenation.
            let mut all = a.clone();
            all.extend_from_slice(&b);
            prop_assert_eq!(ha.merge(&hb), snap(&all));
            prop_assert_eq!(ha.count(), a.len() as u64);
        }
    }
}
